//! The unified run record: one serialisable result shape for every
//! kernel × machine pair.
//!
//! Every machine model (`epiphany`, `refcpu`, the host-thread baseline)
//! reports a [`RunRecord`]; the harness stamps the kernel/mapping/
//! platform identity and the bench binaries serialise it with
//! [`crate::json`]. Per-phase observability — one [`PhaseRecord`] per
//! FFBP merge iteration or per autofocus pipeline stage — replaces the
//! aggregate-only reports the drivers used to emit.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;
use crate::power::PowerRecord;
use crate::stats::Counters;
use crate::time::{Cycle, Frequency, TimeSpan};

/// Bump when the serialised shape changes incompatibly.
pub const RUN_RECORD_VERSION: u32 = 4;

/// Fault-injection and recovery accounting for one run (v3). All-zero
/// when the run executed with faults disabled — the serialised block is
/// present either way so tooling can rely on the shape.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultRecord {
    /// Scheduled fault events that actually fired during the run.
    pub faults_injected: u64,
    /// Message re-sends performed by recovery protocols (e.g. the
    /// reliable flag-write retry loop).
    pub retries: u64,
    /// Extra cycles spent detecting faults and re-executing work
    /// (timeouts, redone iterations, drain-and-restart).
    pub recovery_cycles: u64,
    /// Cores permanently written off and excluded from later phases.
    pub degraded_cores: u64,
    /// Modelled energy attributable to recovery work, joules.
    pub recovery_energy_j: f64,
}

impl FaultRecord {
    /// Whether any fault activity was recorded.
    pub fn any(&self) -> bool {
        *self != FaultRecord::default()
    }

    fn to_json(self) -> Json {
        Json::obj()
            .with("faults_injected", self.faults_injected)
            .with("retries", self.retries)
            .with("recovery_cycles", self.recovery_cycles)
            .with("degraded_cores", self.degraded_cores)
            .with("recovery_energy_j", self.recovery_energy_j)
    }

    fn from_json(json: &Json) -> Option<FaultRecord> {
        let u = |key: &str| json.get(key).and_then(Json::as_u64);
        Some(FaultRecord {
            faults_injected: u("faults_injected")?,
            retries: u("retries")?,
            recovery_cycles: u("recovery_cycles")?,
            degraded_cores: u("degraded_cores")?,
            recovery_energy_j: json.get("recovery_energy_j")?.as_f64()?,
        })
    }
}

/// Modelled energy in joules, by component. All-zero means the
/// platform has no activity-based energy model (datasheet power × time
/// is used instead; see [`RunRecord::energy_j`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyRecord {
    /// Core datapath (FPU + IALU + register file).
    pub compute_j: f64,
    /// Local-store accesses.
    pub sram_j: f64,
    /// On-chip mesh traffic.
    pub mesh_j: f64,
    /// Off-chip link drivers.
    pub elink_j: f64,
    /// External SDRAM device traffic.
    pub sdram_j: f64,
    /// Leakage + ungated clock tree over the makespan.
    pub static_j: f64,
}

impl EnergyRecord {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.sram_j + self.mesh_j + self.elink_j + self.sdram_j + self.static_j
    }

    /// Average power over `seconds`.
    pub fn avg_power_w(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            self.total_j() / seconds
        }
    }

    /// Whether any component carries modelled energy.
    pub fn is_modelled(&self) -> bool {
        self.total_j() > 0.0
    }

    /// `(component name, joules)` in the canonical order — the shape
    /// attribution and rendering iterate over.
    pub fn components(&self) -> [(&'static str, f64); 6] {
        [
            ("compute", self.compute_j),
            ("sram", self.sram_j),
            ("mesh", self.mesh_j),
            ("elink", self.elink_j),
            ("sdram", self.sdram_j),
            ("static", self.static_j),
        ]
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(&self, other: &EnergyRecord) -> EnergyRecord {
        EnergyRecord {
            compute_j: self.compute_j + other.compute_j,
            sram_j: self.sram_j + other.sram_j,
            mesh_j: self.mesh_j + other.mesh_j,
            elink_j: self.elink_j + other.elink_j,
            sdram_j: self.sdram_j + other.sdram_j,
            static_j: self.static_j + other.static_j,
        }
    }

    /// Component-wise delta against an `earlier` snapshot of the same
    /// cumulative quantity, floored at zero per component (cumulative
    /// energy is monotone; the floor only absorbs float dust).
    #[must_use]
    pub fn delta_since(&self, earlier: &EnergyRecord) -> EnergyRecord {
        let d = |now: f64, was: f64| (now - was).max(0.0);
        EnergyRecord {
            compute_j: d(self.compute_j, earlier.compute_j),
            sram_j: d(self.sram_j, earlier.sram_j),
            mesh_j: d(self.mesh_j, earlier.mesh_j),
            elink_j: d(self.elink_j, earlier.elink_j),
            sdram_j: d(self.sdram_j, earlier.sdram_j),
            static_j: d(self.static_j, earlier.static_j),
        }
    }

    /// Serialise to a JSON object.
    pub fn to_json(self) -> Json {
        Json::obj()
            .with("compute_j", self.compute_j)
            .with("sram_j", self.sram_j)
            .with("mesh_j", self.mesh_j)
            .with("elink_j", self.elink_j)
            .with("sdram_j", self.sdram_j)
            .with("static_j", self.static_j)
    }

    /// Parse back from [`EnergyRecord::to_json`] output.
    pub fn from_json(json: &Json) -> Option<EnergyRecord> {
        let f = |key: &str| json.get(key).and_then(Json::as_f64);
        Some(EnergyRecord {
            compute_j: f("compute_j")?,
            sram_j: f("sram_j")?,
            mesh_j: f("mesh_j")?,
            elink_j: f("elink_j")?,
            sdram_j: f("sdram_j")?,
            static_j: f("static_j")?,
        })
    }
}

/// Busy fraction `busy / span`. Over-unity indicates an accounting bug
/// (a component cannot be busy longer than the run), so it trips a
/// debug assertion instead of being silently clamped.
pub fn utilization(busy: Cycle, span: Cycle) -> f64 {
    if span == Cycle::ZERO {
        return 0.0;
    }
    let u = busy.raw() as f64 / span.raw() as f64;
    debug_assert!(
        u <= 1.0,
        "over-unity utilisation: {busy} busy within a {span} span — accounting bug"
    );
    u
}

/// Mesh pressure within one phase (or run): byte-hops and link
/// occupancy deltas between `phase_begin` and `phase_end`. All-zero
/// when the platform has no modelled mesh (refcpu, host).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeshUtilization {
    /// Byte-hops on the on-chip write mesh within the phase.
    pub cmesh_byte_hops: u64,
    /// Byte-hops on the read-request mesh within the phase.
    pub rmesh_byte_hops: u64,
    /// Byte-hops on the off-chip mesh within the phase.
    pub xmesh_byte_hops: u64,
    /// Mesh transfers started within the phase (all meshes).
    pub transfers: u64,
    /// Busy cycles summed over every directed link (all meshes).
    pub link_busy_cycles: u64,
    /// Busy fraction of the most loaded single link within the phase.
    /// Not asserted ≤ 1: posted-write tails reserved in one phase can
    /// drain in the next (same accounting as per-phase eLink).
    pub busiest_link_utilization: f64,
}

impl MeshUtilization {
    /// Byte-hops across all three meshes.
    pub fn total_byte_hops(&self) -> u64 {
        self.cmesh_byte_hops + self.rmesh_byte_hops + self.xmesh_byte_hops
    }

    /// Whether any mesh activity was observed.
    pub fn is_modelled(&self) -> bool {
        *self != MeshUtilization::default()
    }

    fn to_json(self) -> Json {
        Json::obj()
            .with("cmesh_byte_hops", self.cmesh_byte_hops)
            .with("rmesh_byte_hops", self.rmesh_byte_hops)
            .with("xmesh_byte_hops", self.xmesh_byte_hops)
            .with("transfers", self.transfers)
            .with("link_busy_cycles", self.link_busy_cycles)
            .with("busiest_link_utilization", self.busiest_link_utilization)
    }

    fn from_json(json: &Json) -> Option<MeshUtilization> {
        let u = |key: &str| json.get(key).and_then(Json::as_u64);
        Some(MeshUtilization {
            cmesh_byte_hops: u("cmesh_byte_hops")?,
            rmesh_byte_hops: u("rmesh_byte_hops")?,
            xmesh_byte_hops: u("xmesh_byte_hops")?,
            transfers: u("transfers")?,
            link_busy_cycles: u("link_busy_cycles")?,
            busiest_link_utilization: json.get("busiest_link_utilization")?.as_f64()?,
        })
    }
}

/// Load on one directed mesh link over a whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoad {
    /// Physical mesh the link belongs to (`"cmesh"`, `"rmesh"`,
    /// `"xmesh"`).
    pub mesh: String,
    /// Router the link exits (row-major node index).
    pub node: u32,
    /// Output direction letter (`"W"`, `"E"`, `"N"`, `"S"`).
    pub dir: String,
    /// Bytes that crossed this link (each hop counts once).
    pub byte_hops: u64,
    /// Cycles the link was reserved.
    pub busy_cycles: u64,
    /// `busy_cycles` over the run makespan, clamped to 1 (posted
    /// tails can outlive the last core cursor).
    pub busy_fraction: f64,
}

impl LinkLoad {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("mesh", self.mesh.as_str())
            .with("node", self.node)
            .with("dir", self.dir.as_str())
            .with("byte_hops", self.byte_hops)
            .with("busy_cycles", self.busy_cycles)
            .with("busy_fraction", self.busy_fraction)
    }

    fn from_json(json: &Json) -> Option<LinkLoad> {
        let u = |key: &str| json.get(key).and_then(Json::as_u64);
        Some(LinkLoad {
            mesh: json.get("mesh")?.as_str()?.to_string(),
            node: u("node")? as u32,
            dir: json.get("dir")?.as_str()?.to_string(),
            byte_hops: u("byte_hops")?,
            busy_cycles: u("busy_cycles")?,
            busy_fraction: json.get("busy_fraction")?.as_f64()?,
        })
    }
}

/// Per-directed-link load summary for one run: which links carried the
/// bytes and which saturated. Only links that saw traffic are listed,
/// so the heatmap total equals the run's total byte-hops by
/// construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeshHeatmap {
    /// Mesh width in nodes.
    pub cols: usize,
    /// Mesh height in nodes.
    pub rows: usize,
    /// Loaded links, in (mesh, node, dir) order.
    pub links: Vec<LinkLoad>,
}

impl MeshHeatmap {
    /// Byte-hops summed over every listed link (equals the run's
    /// total mesh byte-hops).
    pub fn total_byte_hops(&self) -> u64 {
        self.links.iter().map(|l| l.byte_hops).sum()
    }

    /// The most occupied link, if any traffic was recorded.
    pub fn hottest(&self) -> Option<&LinkLoad> {
        self.links
            .iter()
            .max_by(|a, b| (a.busy_cycles, a.byte_hops).cmp(&(b.busy_cycles, b.byte_hops)))
    }

    /// Render the `top` most occupied links as an aligned text table.
    pub fn render(&self, top: usize) -> String {
        let mut ranked: Vec<&LinkLoad> = self.links.iter().collect();
        ranked.sort_by(|a, b| {
            (b.busy_cycles, b.byte_hops, a.node).cmp(&(a.busy_cycles, a.byte_hops, b.node))
        });
        let mut out = format!(
            "mesh heatmap ({}x{}, {} loaded links, {} byte-hops)\n",
            self.cols,
            self.rows,
            self.links.len(),
            self.total_byte_hops()
        );
        out.push_str("  mesh   link        byte-hops   busy-cycles   busy\n");
        for l in ranked.iter().take(top) {
            let (x, y) = if self.cols > 0 {
                (l.node as usize % self.cols, l.node as usize / self.cols)
            } else {
                (0, 0)
            };
            out.push_str(&format!(
                "  {:<6} ({x},{y})->{:<4} {:>11} {:>13} {:>5.1}%\n",
                l.mesh,
                l.dir,
                l.byte_hops,
                l.busy_cycles,
                l.busy_fraction * 100.0
            ));
        }
        out
    }

    /// Serialise to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("cols", self.cols)
            .with("rows", self.rows)
            .with(
                "links",
                Json::Arr(self.links.iter().map(LinkLoad::to_json).collect()),
            )
    }

    /// Parse back from [`MeshHeatmap::to_json`] output.
    pub fn from_json(json: &Json) -> Option<MeshHeatmap> {
        let u = |key: &str| json.get(key).and_then(Json::as_u64);
        let mut links = Vec::new();
        for l in json.get("links").and_then(Json::as_array).unwrap_or(&[]) {
            links.push(LinkLoad::from_json(l)?);
        }
        Some(MeshHeatmap {
            cols: u("cols")? as usize,
            rows: u("rows")? as usize,
            links,
        })
    }
}

/// One observed phase of a run: a merge iteration, a pipeline stage, a
/// sweep chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Phase family, e.g. `"merge"` or `"beam_stage"`.
    pub name: String,
    /// Occurrence number within the family (merge iteration index,
    /// stage slot, …).
    pub index: u32,
    /// Start offset from the beginning of the run, milliseconds.
    pub start_ms: f64,
    /// Phase duration, milliseconds.
    pub time_ms: f64,
    /// Modelled energy spent within the phase (0 when not modelled).
    pub energy_j: f64,
    /// Off-chip eLink busy fraction within the phase (0 when n/a).
    pub elink_utilization: f64,
    /// Mesh pressure within the phase (all-zero when no mesh is
    /// modelled).
    pub mesh: MeshUtilization,
    /// Free-form per-phase gauges: occupancy, queue depths, hit rates.
    pub metrics: BTreeMap<String, f64>,
}

impl PhaseRecord {
    /// Serialise to a JSON object.
    pub fn to_json(&self) -> Json {
        let mut metrics = Json::obj();
        for (k, v) in &self.metrics {
            metrics.set(k, *v);
        }
        Json::obj()
            .with("name", self.name.as_str())
            .with("index", self.index)
            .with("start_ms", self.start_ms)
            .with("time_ms", self.time_ms)
            .with("energy_j", self.energy_j)
            .with("elink_utilization", self.elink_utilization)
            .with("mesh", self.mesh.to_json())
            .with("metrics", metrics)
    }

    /// Parse back from [`PhaseRecord::to_json`] output.
    pub fn from_json(json: &Json) -> Option<PhaseRecord> {
        let f = |key: &str| json.get(key).and_then(Json::as_f64);
        let mut metrics = BTreeMap::new();
        if let Some(members) = json.get("metrics").and_then(Json::as_object) {
            for (k, v) in members {
                metrics.insert(k.clone(), v.as_f64()?);
            }
        }
        Some(PhaseRecord {
            name: json.get("name")?.as_str()?.to_string(),
            index: json.get("index")?.as_u64()? as u32,
            start_ms: f("start_ms")?,
            time_ms: f("time_ms")?,
            energy_j: f("energy_j")?,
            elink_utilization: f("elink_utilization")?,
            mesh: json
                .get("mesh")
                .and_then(MeshUtilization::from_json)
                .unwrap_or_default(),
            metrics,
        })
    }
}

/// Summary of one simulated (or measured) run — the single result
/// shape shared by every platform and mapping.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Serialisation format version ([`RUN_RECORD_VERSION`]).
    pub version: u32,
    /// Human-readable configuration label.
    pub label: String,
    /// Kernel identity (`"ffbp"`, `"autofocus"`); stamped by the harness.
    pub kernel: String,
    /// Mapping identity (`"ffbp_spmd"`, …); stamped by the harness.
    pub mapping: String,
    /// Platform identity (`"epiphany"`, `"refcpu"`, `"host"`).
    pub platform: String,
    /// Cores the mapping actually used.
    pub cores_used: usize,
    /// Makespan.
    pub elapsed: TimeSpan,
    /// Datasheet power of the platform, watts (energy fallback when no
    /// activity-based model exists).
    pub power_w: f64,
    /// Modelled energy breakdown (all-zero when not modelled).
    pub energy: EnergyRecord,
    /// Aggregated operation counters across all cores.
    pub counters: Counters,
    /// Free-form run-level gauges (`mem_stall_fraction`, `local_hits`, …).
    pub metrics: BTreeMap<String, f64>,
    /// Busy cycles of the most congested on-chip link.
    pub busiest_link_cycles: Cycle,
    /// Busy cycles of the off-chip eLink.
    pub elink_busy_cycles: Cycle,
    /// SDRAM open-row hit rate.
    pub sdram_row_hit_rate: f64,
    /// Fault-injection and recovery accounting (all-zero when the run
    /// executed fault-free).
    pub faults: FaultRecord,
    /// Per-directed-link load summary (absent when no mesh is
    /// modelled).
    pub mesh_heatmap: Option<MeshHeatmap>,
    /// Per-phase breakdown in execution order.
    pub phases: Vec<PhaseRecord>,
    /// Time-resolved power telemetry (v4). Producers with an activity
    /// model fill it directly; the harness synthesises a datasheet
    /// block for the rest, so every harness-run record carries one.
    pub power: Option<PowerRecord>,
}

impl RunRecord {
    /// A blank record for `label` spanning `elapsed`; the producer
    /// fills in whatever it models.
    pub fn new(label: impl Into<String>, elapsed: TimeSpan) -> RunRecord {
        RunRecord {
            version: RUN_RECORD_VERSION,
            label: label.into(),
            kernel: String::new(),
            mapping: String::new(),
            platform: String::new(),
            cores_used: 1,
            elapsed,
            power_w: 0.0,
            energy: EnergyRecord::default(),
            counters: Counters::new(),
            metrics: BTreeMap::new(),
            busiest_link_cycles: Cycle::ZERO,
            elink_busy_cycles: Cycle::ZERO,
            sdram_row_hit_rate: 0.0,
            faults: FaultRecord::default(),
            mesh_heatmap: None,
            phases: Vec::new(),
            power: None,
        }
    }

    /// Execution time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.elapsed.millis()
    }

    /// Execution time in seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed.seconds()
    }

    /// Energy in joules: the activity model when present, otherwise
    /// datasheet power × time (the paper's method for the i7 rows).
    pub fn energy_j(&self) -> f64 {
        if self.energy.is_modelled() {
            self.energy.total_j()
        } else {
            self.power_w * self.seconds()
        }
    }

    /// Average power over the run, watts.
    pub fn avg_power_w(&self) -> f64 {
        let s = self.seconds();
        if s <= 0.0 {
            0.0
        } else {
            self.energy_j() / s
        }
    }

    /// eLink utilisation over the makespan (debug-asserts on
    /// over-unity; see [`utilization`]).
    pub fn elink_utilization(&self) -> f64 {
        utilization(self.elink_busy_cycles, self.elapsed.cycles)
    }

    /// Wall-time speedup of this run over `baseline`.
    pub fn speedup_over(&self, baseline: &RunRecord) -> f64 {
        baseline.seconds() / self.seconds()
    }

    /// A run-level gauge, if recorded.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.get(key).copied()
    }

    /// Record a run-level gauge.
    pub fn set_metric(&mut self, key: &str, value: f64) {
        self.metrics.insert(key.to_string(), value);
    }

    /// Serialise to a JSON object.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in self.counters.iter() {
            counters.set(k, v);
        }
        let mut metrics = Json::obj();
        for (k, v) in &self.metrics {
            metrics.set(k, *v);
        }
        let mut doc = Json::obj()
            .with("version", self.version)
            .with("label", self.label.as_str())
            .with("kernel", self.kernel.as_str())
            .with("mapping", self.mapping.as_str())
            .with("platform", self.platform.as_str())
            .with("cores_used", self.cores_used)
            .with("cycles", self.elapsed.cycles.raw())
            .with("clock_hz", self.elapsed.clock.hz())
            .with("time_ms", self.millis())
            .with("power_w", self.power_w)
            .with("energy_j", self.energy_j())
            .with("energy", self.energy.to_json())
            .with("counters", counters)
            .with("metrics", metrics)
            .with("busiest_link_cycles", self.busiest_link_cycles.raw())
            .with("elink_busy_cycles", self.elink_busy_cycles.raw())
            .with("sdram_row_hit_rate", self.sdram_row_hit_rate)
            .with("faults", self.faults.to_json());
        if let Some(heatmap) = &self.mesh_heatmap {
            doc.set("mesh_heatmap", heatmap.to_json());
        }
        if let Some(power) = &self.power {
            doc.set("power", power.to_json());
        }
        doc.with(
            "phases",
            Json::Arr(self.phases.iter().map(PhaseRecord::to_json).collect()),
        )
    }

    /// Parse back from [`RunRecord::to_json`] output. Counter names are
    /// interned (leaked) — records hold a small, bounded name set.
    pub fn from_json(json: &Json) -> Option<RunRecord> {
        let s = |key: &str| Some(json.get(key)?.as_str()?.to_string());
        let f = |key: &str| json.get(key).and_then(Json::as_f64);
        let u = |key: &str| json.get(key).and_then(Json::as_u64);
        let mut counters = Counters::new();
        if let Some(members) = json.get("counters").and_then(Json::as_object) {
            for (k, v) in members {
                counters.add(Box::leak(k.clone().into_boxed_str()), v.as_u64()?);
            }
        }
        let mut metrics = BTreeMap::new();
        if let Some(members) = json.get("metrics").and_then(Json::as_object) {
            for (k, v) in members {
                metrics.insert(k.clone(), v.as_f64()?);
            }
        }
        let mut phases = Vec::new();
        for p in json.get("phases").and_then(Json::as_array).unwrap_or(&[]) {
            phases.push(PhaseRecord::from_json(p)?);
        }
        Some(RunRecord {
            version: u("version")? as u32,
            label: s("label")?,
            kernel: s("kernel")?,
            mapping: s("mapping")?,
            platform: s("platform")?,
            cores_used: u("cores_used")? as usize,
            elapsed: TimeSpan::new(Cycle(u("cycles")?), Frequency::hz_new(f("clock_hz")?)),
            power_w: f("power_w")?,
            energy: EnergyRecord::from_json(json.get("energy")?)?,
            counters,
            metrics,
            busiest_link_cycles: Cycle(u("busiest_link_cycles")?),
            elink_busy_cycles: Cycle(u("elink_busy_cycles")?),
            sdram_row_hit_rate: f("sdram_row_hit_rate")?,
            // Pre-v3 documents lack the block; default to fault-free.
            faults: json
                .get("faults")
                .and_then(FaultRecord::from_json)
                .unwrap_or_default(),
            mesh_heatmap: json.get("mesh_heatmap").and_then(MeshHeatmap::from_json),
            phases,
            // Pre-v4 documents lack the block; parse without it.
            power: json.get("power").and_then(PowerRecord::from_json),
        })
    }
}

impl fmt::Display for RunRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.label)?;
        if !self.mapping.is_empty() || !self.platform.is_empty() {
            writeln!(
                f,
                "  mapping        : {} on {}",
                self.mapping, self.platform
            )?;
        }
        writeln!(f, "  cores used     : {}", self.cores_used)?;
        writeln!(f, "  execution time : {:.3} ms", self.millis())?;
        writeln!(f, "  energy         : {:.4} J", self.energy_j())?;
        writeln!(f, "  avg power      : {:.3} W", self.avg_power_w())?;
        writeln!(
            f,
            "  eLink util     : {:.1}%",
            self.elink_utilization() * 100.0
        )?;
        writeln!(
            f,
            "  SDRAM row hits : {:.1}%",
            self.sdram_row_hit_rate * 100.0
        )?;
        if let Some(power) = &self.power {
            writeln!(
                f,
                "  power timeline : {} epoch(s), peak {:.3} W",
                power.timeline.len(),
                power.peak_power_w(self.elapsed.clock)
            )?;
        }
        if self.faults.any() {
            writeln!(
                f,
                "  faults         : {} injected, {} retries, {} recovery cycles, {} degraded cores, {:.5} J",
                self.faults.faults_injected,
                self.faults.retries,
                self.faults.recovery_cycles,
                self.faults.degraded_cores,
                self.faults.recovery_energy_j
            )?;
        }
        for p in &self.phases {
            writeln!(
                f,
                "  phase {:>12}[{}]: {:.4} ms, {:.5} J, eLink {:.1}%",
                p.name,
                p.index,
                p.time_ms,
                p.energy_j,
                p.elink_utilization * 100.0
            )?;
        }
        write!(f, "{}", self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycles: u64) -> RunRecord {
        let mut r = RunRecord::new("t", TimeSpan::new(Cycle(cycles), Frequency::ghz(1.0)));
        r.elink_busy_cycles = Cycle(cycles / 2);
        r.sdram_row_hit_rate = 0.5;
        r
    }

    #[test]
    fn speedup_is_ratio_of_times() {
        let fast = record(1_000_000);
        let slow = record(4_250_000);
        assert!((fast.speedup_over(&slow) - 4.25).abs() < 1e-9);
    }

    #[test]
    fn elink_utilization_is_fraction_of_makespan() {
        let r = record(1000);
        assert!((r.elink_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "over-unity utilisation")]
    fn over_unity_utilisation_is_an_accounting_bug() {
        let mut r = record(1000);
        r.elink_busy_cycles = Cycle(1001);
        let _ = r.elink_utilization();
    }

    #[test]
    fn energy_falls_back_to_datasheet_power() {
        // 1e6 cycles @ 1 GHz = 1 ms at 17.5 W -> 17.5 mJ.
        let mut r = record(1_000_000);
        r.power_w = 17.5;
        assert!((r.energy_j() - 17.5e-3).abs() < 1e-12);
        assert!((r.avg_power_w() - 17.5).abs() < 1e-9);
        // A modelled breakdown takes precedence.
        r.energy.compute_j = 2e-3;
        assert!((r.energy_j() - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut r = record(12345);
        r.kernel = "ffbp".into();
        r.mapping = "ffbp_spmd".into();
        r.platform = "epiphany".into();
        r.cores_used = 16;
        r.power_w = 2.0;
        r.energy = EnergyRecord {
            compute_j: 1e-3,
            sram_j: 2e-4,
            mesh_j: 3e-5,
            elink_j: 4e-6,
            sdram_j: 5e-7,
            static_j: 6e-8,
        };
        r.counters.add("flop", 123);
        r.counters.add("dma_bytes", 456);
        r.set_metric("local_hits", 99.0);
        r.busiest_link_cycles = Cycle(777);
        r.faults = FaultRecord {
            faults_injected: 3,
            retries: 2,
            recovery_cycles: 4096,
            degraded_cores: 1,
            recovery_energy_j: 1.5e-5,
        };
        r.mesh_heatmap = Some(MeshHeatmap {
            cols: 4,
            rows: 4,
            links: vec![LinkLoad {
                mesh: "cmesh".into(),
                node: 5,
                dir: "E".into(),
                byte_hops: 4096,
                busy_cycles: 512,
                busy_fraction: 0.25,
            }],
        });
        r.power = Some(crate::power::PowerRecord {
            timeline: {
                let mut t = crate::power::PowerTimeline::new();
                t.push(crate::power::PowerEpoch {
                    start: Cycle(0),
                    end: Cycle(12345),
                    energy: r.energy,
                });
                t
            },
            phases: vec![crate::power::PhasePower {
                name: "merge".into(),
                index: 2,
                energy: r.energy,
                attribution: crate::power::PhaseAttribution::attribute(&r.energy, 0.25, 0.8, 0.2),
            }],
        });
        r.phases.push(PhaseRecord {
            name: "merge".into(),
            index: 2,
            start_ms: 0.5,
            time_ms: 0.25,
            energy_j: 1e-4,
            elink_utilization: 0.75,
            mesh: MeshUtilization {
                cmesh_byte_hops: 4096,
                rmesh_byte_hops: 128,
                xmesh_byte_hops: 64,
                transfers: 9,
                link_busy_cycles: 512,
                busiest_link_utilization: 0.25,
            },
            metrics: BTreeMap::from([("occupancy".to_string(), 0.9)]),
        });

        let text = r.to_json().to_string_pretty();
        let back = RunRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.version, RUN_RECORD_VERSION);
        assert_eq!(back.label, r.label);
        assert_eq!(back.mapping, "ffbp_spmd");
        assert_eq!(back.cores_used, 16);
        assert_eq!(back.elapsed.cycles, r.elapsed.cycles);
        assert_eq!(back.elapsed.clock.hz(), r.elapsed.clock.hz());
        assert_eq!(back.energy, r.energy);
        assert_eq!(back.counters.get("flop"), 123);
        assert_eq!(back.metric("local_hits"), Some(99.0));
        assert_eq!(back.busiest_link_cycles, Cycle(777));
        assert_eq!(back.faults, r.faults);
        assert!(back.faults.any());
        assert_eq!(back.mesh_heatmap, r.mesh_heatmap);
        assert_eq!(back.power, r.power);
        assert_eq!(back.phases, r.phases);
        assert_eq!(back.phases[0].mesh.total_byte_hops(), 4096 + 128 + 64);
        assert!((back.energy_j() - r.energy_j()).abs() < 1e-15);
    }

    #[test]
    fn heatmap_totals_and_render() {
        let map = MeshHeatmap {
            cols: 4,
            rows: 4,
            links: vec![
                LinkLoad {
                    mesh: "cmesh".into(),
                    node: 5,
                    dir: "E".into(),
                    byte_hops: 100,
                    busy_cycles: 10,
                    busy_fraction: 0.1,
                },
                LinkLoad {
                    mesh: "rmesh".into(),
                    node: 6,
                    dir: "W".into(),
                    byte_hops: 300,
                    busy_cycles: 40,
                    busy_fraction: 0.4,
                },
            ],
        };
        assert_eq!(map.total_byte_hops(), 400);
        assert_eq!(map.hottest().unwrap().node, 6);
        let text = map.render(10);
        assert!(text.contains("400 byte-hops"));
        assert!(text.contains("(2,1)->W"));
        // Top-1 keeps only the most occupied link.
        assert!(!map.render(1).contains("cmesh"));
    }

    #[test]
    fn record_without_faults_block_parses_fault_free() {
        // Pre-v3 documents lack the "faults" key: parse as fault-free.
        let mut r = record(100);
        r.kernel = "ffbp".into();
        r.mapping = "ffbp_seq".into();
        r.platform = "epiphany".into();
        let mut doc = r.to_json();
        doc.set("faults", Json::Null);
        let back = RunRecord::from_json(&doc).unwrap();
        assert_eq!(back.faults, FaultRecord::default());
        assert!(!back.faults.any());
    }

    #[test]
    fn record_without_power_block_parses_without_one() {
        // Pre-v4 documents lack the "power" key.
        let r = record(100);
        let mut doc = r.to_json();
        doc.set("power", Json::Null);
        let back = RunRecord::from_json(&doc).unwrap();
        assert!(back.power.is_none());
    }

    #[test]
    fn energy_component_arithmetic() {
        let a = EnergyRecord {
            compute_j: 2.0,
            sram_j: 1.0,
            ..EnergyRecord::default()
        };
        let b = EnergyRecord {
            compute_j: 0.5,
            static_j: 3.0,
            ..EnergyRecord::default()
        };
        let sum = a.plus(&b);
        assert_eq!(sum.compute_j, 2.5);
        assert_eq!(sum.static_j, 3.0);
        let delta = sum.delta_since(&b);
        assert_eq!(delta.compute_j, 2.0);
        // The floor absorbs float dust instead of going negative.
        assert_eq!(b.delta_since(&sum).compute_j, 0.0);
        assert_eq!(a.components()[0], ("compute", 2.0));
        assert_eq!(a.components()[5], ("static", 0.0));
    }

    #[test]
    fn phase_without_mesh_block_parses_with_default() {
        // Version-1 documents lack the "mesh" key.
        let old = Json::parse(
            r#"{"name":"merge","index":0,"start_ms":0.0,"time_ms":1.0,
                "energy_j":0.0,"elink_utilization":0.0,"metrics":{}}"#,
        )
        .unwrap();
        let p = PhaseRecord::from_json(&old).unwrap();
        assert_eq!(p.mesh, MeshUtilization::default());
        assert!(!p.mesh.is_modelled());
    }

    #[test]
    fn display_includes_label_and_phases() {
        let mut r = record(10);
        r.phases.push(PhaseRecord {
            name: "merge".into(),
            index: 0,
            start_ms: 0.0,
            time_ms: 1.0,
            energy_j: 0.0,
            elink_utilization: 0.0,
            mesh: MeshUtilization::default(),
            metrics: BTreeMap::new(),
        });
        let s = format!("{r}");
        assert!(s.contains("== t =="));
        assert!(s.contains("execution time"));
        assert!(s.contains("phase"));
    }
}
