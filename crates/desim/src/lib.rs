//! Deterministic discrete-event simulation (DES) kernel.
//!
//! This crate is the timing substrate for the machine models in this
//! workspace (`epiphany`, `refcpu`). It provides:
//!
//! * a [`Cycle`] simulation clock (one tick = one clock cycle of the
//!   modelled clock domain),
//! * an event queue with *deterministic* tie-breaking ([`Simulator`]),
//! * FIFO-arbitrated shared resources with a fixed service rate
//!   ([`resource::FifoResource`]), used to model links, memory ports and
//!   DMA channels,
//! * lightweight statistics: counters, histograms and busy-time trackers
//!   ([`stats`]).
//!
//! The kernel is intentionally *not* a coroutine framework: the machine
//! models in this workspace are transaction-level and batch pure compute
//! analytically, so a simple "earliest deadline first" timeline with
//! explicit resource reservations is both faster and easier to test than
//! a process-interleaving scheduler.
//!
//! # Example
//!
//! ```
//! use desim::{Cycle, Simulator};
//!
//! let mut sim = Simulator::new();
//! let mut fired = Vec::new();
//! sim.schedule(Cycle(10), 7u32);
//! sim.schedule(Cycle(5), 3u32);
//! while let Some((t, payload)) = sim.pop() {
//!     fired.push((t, payload));
//! }
//! assert_eq!(fired, vec![(Cycle(5), 3), (Cycle(10), 7)]);
//! ```

#![forbid(unsafe_code)]

pub mod json;
pub mod power;
pub mod queue;
pub mod record;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod work;

pub use json::Json;
pub use power::{PhaseAttribution, PhasePower, PowerEpoch, PowerRecord, PowerTimeline};
pub use queue::{EventQueue, Simulator};
pub use record::{
    EnergyRecord, FaultRecord, LinkLoad, MeshHeatmap, MeshUtilization, PhaseRecord, RunRecord,
    RUN_RECORD_VERSION,
};
pub use resource::{FifoResource, Reservation};
pub use rng::SmallRng;
pub use time::{Cycle, Frequency, TimeSpan};
pub use trace::{chrome_trace, MeshKind, TraceEvent, Tracer, Track};
pub use work::OpCounts;
