//! Simulation time: cycles, frequencies and wall-clock conversion.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point (or span) on the simulation timeline, measured in clock cycles
/// of the modelled clock domain.
///
/// `Cycle` is a plain newtype over `u64`; arithmetic saturates on
/// subtraction underflow is a bug, so `Sub` panics in debug builds like
/// ordinary integer arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The origin of the timeline.
    pub const ZERO: Cycle = Cycle(0);

    /// Largest representable time; used as "never".
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: `self + rhs`, clamped at `u64::MAX`.
    /// Sentinel instants like `Chip::DROPPED` sit at the top of the
    /// range, so adding a delay term to an arbitrary instant must not
    /// wrap around.
    #[inline]
    pub fn saturating_add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_add(rhs.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Convert a cycle count in one clock domain into seconds at `freq`.
    #[inline]
    pub fn to_seconds(self, freq: Frequency) -> f64 {
        self.0 as f64 / freq.hz()
    }

    /// Convert to milliseconds at `freq`.
    #[inline]
    pub fn to_millis(self, freq: Frequency) -> f64 {
        self.to_seconds(freq) * 1e3
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A clock frequency, used to convert simulated cycles to wall time and
/// power to energy.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Frequency(f64);

impl Frequency {
    /// Construct from Hertz. Panics on non-positive or non-finite input.
    pub fn hz_new(hz: f64) -> Frequency {
        assert!(
            hz.is_finite() && hz > 0.0,
            "frequency must be positive, got {hz}"
        );
        Frequency(hz)
    }

    /// Construct from megahertz.
    pub fn mhz(mhz: f64) -> Frequency {
        Frequency::hz_new(mhz * 1e6)
    }

    /// Construct from gigahertz.
    pub fn ghz(ghz: f64) -> Frequency {
        Frequency::hz_new(ghz * 1e9)
    }

    /// Value in Hertz.
    #[inline]
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Cycle period in seconds.
    #[inline]
    pub fn period_seconds(self) -> f64 {
        1.0 / self.0
    }

    /// Number of cycles elapsed in `seconds` (rounded up: a partial
    /// cycle still occupies the resource for the whole cycle).
    #[inline]
    pub fn cycles_in(self, seconds: f64) -> Cycle {
        Cycle((seconds * self.0).ceil() as u64)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} GHz", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.1} MHz", self.0 / 1e6)
        } else {
            write!(f, "{:.0} Hz", self.0)
        }
    }
}

/// A cycle count paired with the frequency it was measured at, so that
/// spans from different clock domains can be compared in wall time.
#[derive(Debug, Clone, Copy)]
pub struct TimeSpan {
    /// Elapsed cycles in the domain.
    pub cycles: Cycle,
    /// Clock the cycles were counted against.
    pub clock: Frequency,
}

impl TimeSpan {
    /// Create a span.
    pub fn new(cycles: Cycle, clock: Frequency) -> TimeSpan {
        TimeSpan { cycles, clock }
    }

    /// Span length in seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles.to_seconds(self.clock)
    }

    /// Span length in milliseconds.
    pub fn millis(&self) -> f64 {
        self.cycles.to_millis(self.clock)
    }

    /// Wall-time ratio `other / self` — how many times longer `other` is.
    pub fn speedup_over(&self, other: &TimeSpan) -> f64 {
        other.seconds() / self.seconds()
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ms ({} @ {})",
            self.millis(),
            self.cycles,
            self.clock
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle(10) + Cycle(5);
        assert_eq!(a, Cycle(15));
        assert_eq!(a - Cycle(5), Cycle(10));
        assert_eq!(Cycle(3).saturating_sub(Cycle(10)), Cycle::ZERO);
        assert_eq!(Cycle(3).saturating_add(Cycle(4)), Cycle(7));
        assert_eq!(
            Cycle(u64::MAX).saturating_add(Cycle(1)),
            Cycle(u64::MAX),
            "instants at the sentinel ceiling must not wrap"
        );
        assert_eq!(Cycle(3).max(Cycle(7)), Cycle(7));
        assert_eq!(Cycle(3).min(Cycle(7)), Cycle(3));
        let mut c = Cycle(1);
        c += 4;
        assert_eq!(c, Cycle(5));
        c += Cycle(5);
        assert_eq!(c, Cycle(10));
        c -= Cycle(2);
        assert_eq!(c, Cycle(8));
    }

    #[test]
    fn cycle_sum() {
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }

    #[test]
    fn frequency_conversions() {
        let f = Frequency::ghz(1.0);
        assert_eq!(f.hz(), 1e9);
        assert_eq!(Cycle(1_000_000).to_millis(f), 1.0);
        assert_eq!(f.cycles_in(1e-6), Cycle(1000));
        // Partial cycles round up.
        assert_eq!(f.cycles_in(1.5e-9), Cycle(2));
        let m = Frequency::mhz(400.0);
        assert!((m.hz() - 4e8).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn frequency_rejects_zero() {
        let _ = Frequency::hz_new(0.0);
    }

    #[test]
    fn timespan_speedup() {
        // 1000 cycles @ 1 GHz = 1 us; 2670 cycles @ 2.67 GHz = 1 us.
        let a = TimeSpan::new(Cycle(1000), Frequency::ghz(1.0));
        let b = TimeSpan::new(Cycle(2670), Frequency::ghz(2.67));
        let s = a.speedup_over(&b);
        assert!((s - 1.0).abs() < 1e-9, "speedup was {s}");
        // Half the cycles at the same clock -> 2x speedup.
        let c = TimeSpan::new(Cycle(500), Frequency::ghz(1.0));
        assert!((c.speedup_over(&a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Cycle(42)), "42 cyc");
        assert_eq!(format!("{}", Frequency::ghz(1.0)), "1.00 GHz");
        assert_eq!(format!("{}", Frequency::mhz(400.0)), "400.0 MHz");
    }
}
