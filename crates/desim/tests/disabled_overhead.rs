//! The tracer's overhead guarantee: a *disabled* tracer must not
//! allocate, no matter how many events are offered to it. This test
//! binary installs a counting global allocator (which is why it lives
//! alone in its own integration-test binary) and asserts the
//! allocation count does not move across a large batch of disabled
//! emission calls.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use desim::trace::{MeshKind, Tracer, Track};
use desim::Cycle;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracer_never_allocates() {
    let tracer = Tracer::disabled();
    let link = Track::MeshLink {
        mesh: MeshKind::CMesh,
        node: 5,
        dir: 1,
    };
    // Warm up once so any lazy statics in the harness are paid for.
    tracer.span(Track::Core(0), "warmup", Cycle(0), Cycle(1));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..100_000u64 {
        tracer.span(
            Track::Core((i % 16) as u32),
            "compute",
            Cycle(i),
            Cycle(i + 3),
        );
        tracer.instant(link, "xfer", Cycle(i));
        tracer.counter(Track::Run, "energy_j", Cycle(i), i as f64);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled tracer allocated {} times",
        after - before
    );
    assert_eq!(tracer.event_count(), 0);
}
