//! FFBP on the reference CPU model (Table I row 1).
//!
//! The same functional merges as `sar_core::ffbp::ffbp`, but every
//! output row's operation counts are priced by the [`refcpu::RefCpu`]
//! pipeline model and every data access touches its cache hierarchy at
//! the address the real layout would use. Sequential output-row writes
//! and largely monotone child reads let the hardware prefetcher do its
//! work — the mechanism the paper credits for the i7's 2.8x advantage
//! over a single Epiphany core on this kernel.

use desim::{OpCounts, RunRecord};
use refcpu::{RefCpu, RefCpuParams};
use sar_core::ffbp::grid::Subaperture;
use sar_core::ffbp::interp::nearest_indices;
use sar_core::ffbp::merge::combine_sample_with_lookup;
use sar_core::ffbp::pipeline::stage0;
use sar_core::image::ComplexImage;

use crate::layout::ExternalLayout;
use crate::workloads::FfbpWorkload;

/// Outcome of the reference run.
pub struct FfbpRefRun {
    /// Machine record (one phase per merge iteration).
    pub record: RunRecord,
    /// The formed image (identical to the other machines' output).
    pub image: ComplexImage,
}

/// Execute the FFBP workload on the reference CPU model.
pub fn run(w: &FfbpWorkload, params: RefCpuParams) -> FfbpRefRun {
    let geom = &w.geom;
    let layout = ExternalLayout::new(geom.num_pulses as u32, geom.num_bins as u32);
    let mut cpu = RefCpu::new(params);
    let mut counts = OpCounts::default();
    let mut charged = OpCounts::default();

    let mut stage: Vec<Subaperture> = stage0(&w.data, geom);
    let mut stage_idx = 0u32;

    while stage.len() > 1 {
        cpu.phase_begin("merge");
        let child_beams = stage[0].grid.n_beams as u32;
        let out_grid = stage[0].grid.refined();
        let mut next = Vec::with_capacity(stage.len() / 2);
        for (pair_idx, pair) in stage.chunks(2).enumerate() {
            let (a, b) = (&pair[0], &pair[1]);
            let l = b.center_y - a.center_y;
            let mut out = Subaperture::zeros(
                (a.center_y + b.center_y) / 2.0,
                a.length + b.length,
                out_grid,
                geom.num_bins,
            );
            let beam_base_a = 2 * pair_idx as u32 * child_beams;
            let beam_base_b = beam_base_a + child_beams;
            let out_beam_base = pair_idx as u32 * out_grid.n_beams as u32;
            for j in 0..out_grid.n_beams {
                let theta = out_grid.beam_theta(j);
                for i in 0..geom.num_bins {
                    let r = geom.bin_range(i);
                    let (v, look) = combine_sample_with_lookup(
                        a,
                        b,
                        geom,
                        r,
                        theta,
                        l,
                        w.config.interp,
                        w.config.phase_correct,
                        &mut counts,
                    );
                    // Demand traffic at the addresses the layout implies.
                    if let Some((bin, beam)) = nearest_indices(a, geom, look.r1, look.theta1) {
                        let addr = layout.addr(stage_idx, beam_base_a + beam as u32, bin as u32);
                        cpu.mem_read(addr.0 as u64, 8);
                    }
                    if let Some((bin, beam)) = nearest_indices(b, geom, look.r2, look.theta2) {
                        let addr = layout.addr(stage_idx, beam_base_b + beam as u32, bin as u32);
                        cpu.mem_read(addr.0 as u64, 8);
                    }
                    let out_addr = layout.addr(stage_idx + 1, out_beam_base + j as u32, i as u32);
                    cpu.mem_write(out_addr.0 as u64, 8);
                    *out.data.at_mut(j, i) = v;
                }
                // Price this row's arithmetic.
                let delta = counts.since(&charged);
                charged = counts;
                cpu.compute(&delta);
            }
            next.push(out);
        }
        cpu.phase_end();
        stage = next;
        stage_idx += 1;
    }

    let full = stage.into_iter().next().expect("non-empty stage");
    FfbpRefRun {
        record: cpu.report("FFBP / Intel i7 model, 1 core @ 2.67 GHz"),
        image: full.data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sar_core::ffbp::ffbp;

    #[test]
    fn produces_the_same_image_as_the_plain_algorithm() {
        let w = FfbpWorkload::small();
        let machine = run(&w, RefCpuParams::default());
        let plain = ffbp(&w.data, &w.geom, &w.config);
        assert_eq!(machine.image.as_slice(), plain.image.as_slice());
    }

    #[test]
    fn time_scales_with_workload() {
        let w = FfbpWorkload::small();
        let r = run(&w, RefCpuParams::default());
        // 64 x 129 x 6 merges ~ 50 K samples; must take > 1 us and less
        // than a second on a 2.67 GHz model.
        assert!(r.record.millis() > 0.001);
        assert!(r.record.millis() < 1000.0);
    }

    #[test]
    fn mostly_compute_bound_thanks_to_prefetch() {
        let w = FfbpWorkload::small();
        let r = run(&w, RefCpuParams::default());
        assert!(
            r.record.metric("mem_stall_fraction").unwrap() < 0.5,
            "prefetched streaming should not stall > 50%: {}",
            r.record.metric("mem_stall_fraction").unwrap()
        );
    }

    #[test]
    fn disabling_prefetch_slows_the_run() {
        let w = FfbpWorkload::small();
        let with = run(&w, RefCpuParams::default());
        let without = run(&w, RefCpuParams::without_prefetch());
        assert!(
            without.record.millis() > with.record.millis(),
            "no-prefetch {} ms should exceed prefetch {} ms",
            without.record.millis(),
            with.record.millis()
        );
    }
}
