//! The Table I harness: run all six configurations and print the
//! paper's table with measured-vs-published columns.

use std::fmt;

use desim::Json;
use sim_harness::{run, EpiphanyPlatform, Mapping, MappingRun, RefCpuPlatform, Workload};

use crate::harness_impls::{
    AutofocusMpmdMapping, AutofocusRefMapping, AutofocusSeqMapping, FfbpRefMapping, FfbpSeqMapping,
    FfbpSpmdMapping,
};
use crate::workloads::{AutofocusWorkload, FfbpWorkload};

pub use sim_harness::{EPIPHANY_POWER_W, INTEL_POWER_W};

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Configuration label.
    pub label: String,
    /// Cores used.
    pub cores: usize,
    /// Measured (simulated) execution time, milliseconds.
    pub time_ms: f64,
    /// Throughput in criterion pixels per second (autofocus rows).
    pub throughput_px_s: Option<f64>,
    /// Measured speedup over the Intel row of the same kernel.
    pub speedup: f64,
    /// Speedup the paper reports for this row.
    pub paper_speedup: f64,
    /// Datasheet power attributed to the configuration, watts.
    pub power_w: f64,
    /// Fine-grained modelled power (Epiphany rows only), watts.
    pub modeled_power_w: Option<f64>,
}

/// The whole table plus the derived energy-efficiency ratios.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// FFBP rows: Intel, Epiphany x1, Epiphany x16.
    pub ffbp: Vec<Table1Row>,
    /// Autofocus rows: Intel, Epiphany x1, Epiphany x13.
    pub autofocus: Vec<Table1Row>,
    /// Throughput-per-watt advantage of parallel-Epiphany FFBP over
    /// the Intel reference (paper: 38x).
    pub ffbp_energy_ratio: f64,
    /// Same for autofocus (paper: 78x).
    pub autofocus_energy_ratio: f64,
    /// FFBP parallel over sequential-Epiphany speedup (paper: 11.7x).
    pub ffbp_parallel_vs_seq: f64,
    /// Autofocus parallel over sequential-Epiphany (paper: 10.9x).
    pub autofocus_parallel_vs_seq: f64,
    /// The six underlying records (FFBP ref/seq/par, then autofocus
    /// ref/seq/par), for bench documents; not part of
    /// [`Table1::to_json`], which keeps the golden-baseline row shape.
    pub records: Vec<desim::RunRecord>,
}

/// Run all six configurations of Table I, each through the harness's
/// single entry point ([`sim_harness::run`]) on its Table I platform.
pub fn table1(ffbp_w: &FfbpWorkload, af_w: &AutofocusWorkload) -> Table1 {
    let intel = RefCpuPlatform::default();
    let epiphany = EpiphanyPlatform::default();
    let pair = |mapping: &dyn Mapping, workload: &Workload, on_intel: bool| -> MappingRun {
        let platform: &dyn sim_harness::Platform = if on_intel { &intel } else { &epiphany };
        run(mapping, workload, platform).expect("Table I pairs are all supported")
    };

    // --- FFBP ---
    let ffbp_workload = Workload::Ffbp(ffbp_w.clone());
    let f_ref = pair(&FfbpRefMapping, &ffbp_workload, true);
    let f_seq = pair(&FfbpSeqMapping, &ffbp_workload, false);
    let f_par = pair(&FfbpSpmdMapping::default(), &ffbp_workload, false);
    let t_ref = f_ref.record.elapsed.seconds();

    let ffbp = vec![
        Table1Row {
            label: "Sequential on Intel i7 @ 2.67 GHz".into(),
            cores: 1,
            time_ms: f_ref.record.millis(),
            throughput_px_s: None,
            speedup: 1.0,
            paper_speedup: 1.0,
            power_w: INTEL_POWER_W,
            modeled_power_w: None,
        },
        Table1Row {
            label: "Sequential on Epiphany @ 1 GHz".into(),
            cores: 1,
            time_ms: f_seq.record.millis(),
            throughput_px_s: None,
            speedup: t_ref / f_seq.record.elapsed.seconds(),
            paper_speedup: 0.36,
            power_w: EPIPHANY_POWER_W,
            modeled_power_w: Some(f_seq.record.avg_power_w()),
        },
        Table1Row {
            label: "Parallel on Epiphany @ 1 GHz".into(),
            cores: 16,
            time_ms: f_par.record.millis(),
            throughput_px_s: None,
            speedup: t_ref / f_par.record.elapsed.seconds(),
            paper_speedup: 4.25,
            power_w: EPIPHANY_POWER_W,
            modeled_power_w: Some(f_par.record.avg_power_w()),
        },
    ];

    // --- Autofocus ---
    let af_workload = Workload::Autofocus(af_w.clone());
    let a_ref = pair(&AutofocusRefMapping, &af_workload, true);
    let a_seq = pair(&AutofocusSeqMapping, &af_workload, false);
    let a_par = pair(&AutofocusMpmdMapping::default(), &af_workload, false);
    let px = af_w.pixels() as f64;
    let thr = |secs: f64| px / secs;
    let t_aref = a_ref.record.elapsed.seconds();

    let autofocus = vec![
        Table1Row {
            label: "Sequential on Intel i7 @ 2.67 GHz".into(),
            cores: 1,
            time_ms: a_ref.record.millis(),
            throughput_px_s: Some(thr(t_aref)),
            speedup: 1.0,
            paper_speedup: 1.0,
            power_w: INTEL_POWER_W,
            modeled_power_w: None,
        },
        Table1Row {
            label: "Sequential on Epiphany @ 1 GHz".into(),
            cores: 1,
            time_ms: a_seq.record.millis(),
            throughput_px_s: Some(thr(a_seq.record.elapsed.seconds())),
            speedup: t_aref / a_seq.record.elapsed.seconds(),
            paper_speedup: 0.8,
            power_w: EPIPHANY_POWER_W,
            modeled_power_w: Some(a_seq.record.avg_power_w()),
        },
        Table1Row {
            label: "Parallel on Epiphany @ 1 GHz".into(),
            cores: 13,
            time_ms: a_par.record.millis(),
            throughput_px_s: Some(thr(a_par.record.elapsed.seconds())),
            speedup: t_aref / a_par.record.elapsed.seconds(),
            paper_speedup: 8.93,
            power_w: EPIPHANY_POWER_W,
            modeled_power_w: Some(a_par.record.avg_power_w()),
        },
    ];

    // Energy efficiency as the paper computes it: throughput per watt
    // from datasheet power.
    let ffbp_energy_ratio = ffbp[2].speedup * (INTEL_POWER_W / EPIPHANY_POWER_W);
    let autofocus_energy_ratio = autofocus[2].speedup * (INTEL_POWER_W / EPIPHANY_POWER_W);

    Table1 {
        ffbp_parallel_vs_seq: f_seq.record.elapsed.seconds() / f_par.record.elapsed.seconds(),
        autofocus_parallel_vs_seq: a_seq.record.elapsed.seconds() / a_par.record.elapsed.seconds(),
        ffbp,
        autofocus,
        ffbp_energy_ratio,
        autofocus_energy_ratio,
        records: vec![
            f_ref.record,
            f_seq.record,
            f_par.record,
            a_ref.record,
            a_seq.record,
            a_par.record,
        ],
    }
}

impl Table1Row {
    /// Serialise to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("label", self.label.as_str())
            .with("cores", self.cores)
            .with("time_ms", self.time_ms)
            .with(
                "throughput_px_s",
                match self.throughput_px_s {
                    Some(v) => Json::from(v),
                    None => Json::Null,
                },
            )
            .with("speedup", self.speedup)
            .with("paper_speedup", self.paper_speedup)
            .with("power_w", self.power_w)
            .with(
                "modeled_power_w",
                match self.modeled_power_w {
                    Some(v) => Json::from(v),
                    None => Json::Null,
                },
            )
    }
}

impl Table1 {
    /// Serialise to a JSON object (the golden-record baseline shape).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with(
                "ffbp",
                Json::Arr(self.ffbp.iter().map(Table1Row::to_json).collect()),
            )
            .with(
                "autofocus",
                Json::Arr(self.autofocus.iter().map(Table1Row::to_json).collect()),
            )
            .with("ffbp_energy_ratio", self.ffbp_energy_ratio)
            .with("autofocus_energy_ratio", self.autofocus_energy_ratio)
            .with("ffbp_parallel_vs_seq", self.ffbp_parallel_vs_seq)
            .with("autofocus_parallel_vs_seq", self.autofocus_parallel_vs_seq)
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TABLE I — Resources, Performance, and Estimated Power (measured by the model | paper)"
        )?;
        writeln!(f, "\nFFBP implementations")?;
        writeln!(
            f,
            "{:<38} {:>5} {:>12} {:>9} {:>7} {:>8}",
            "", "cores", "time (ms)", "speedup", "paper", "power W"
        )?;
        for row in &self.ffbp {
            writeln!(
                f,
                "{:<38} {:>5} {:>12.1} {:>8.2}x {:>6.2}x {:>8.1}",
                row.label, row.cores, row.time_ms, row.speedup, row.paper_speedup, row.power_w
            )?;
        }
        writeln!(f, "\nAutofocus implementations")?;
        writeln!(
            f,
            "{:<38} {:>5} {:>14} {:>9} {:>7} {:>8}",
            "", "cores", "px/s", "speedup", "paper", "power W"
        )?;
        for row in &self.autofocus {
            writeln!(
                f,
                "{:<38} {:>5} {:>14.0} {:>8.2}x {:>6.2}x {:>8.1}",
                row.label,
                row.cores,
                row.throughput_px_s.unwrap_or(0.0),
                row.speedup,
                row.paper_speedup,
                row.power_w
            )?;
        }
        writeln!(f, "\nDerived figures (measured | paper)")?;
        writeln!(
            f,
            "  FFBP parallel vs sequential Epiphany : {:>6.2}x | 11.7x",
            self.ffbp_parallel_vs_seq
        )?;
        writeln!(
            f,
            "  AF   parallel vs sequential Epiphany : {:>6.2}x | 10.9x",
            self.autofocus_parallel_vs_seq
        )?;
        writeln!(
            f,
            "  FFBP energy efficiency vs Intel      : {:>6.1}x | 38x",
            self.ffbp_energy_ratio
        )?;
        writeln!(
            f,
            "  AF   energy efficiency vs Intel      : {:>6.1}x | 78x",
            self.autofocus_energy_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_table_has_the_paper_shape() {
        // The small workload exercises the full harness quickly. The
        // *shape* must match the paper: sequential Epiphany loses to
        // Intel on FFBP, parallel wins on both kernels, and the energy
        // advantage is large.
        let t = table1(&FfbpWorkload::small(), &AutofocusWorkload::small());
        assert_eq!(t.ffbp.len(), 3);
        assert_eq!(t.autofocus.len(), 3);
        assert!(t.ffbp[1].speedup < 1.0, "seq Epiphany must lose on FFBP");
        assert!(t.ffbp[2].speedup > 1.0, "16 cores must win on FFBP");
        assert!(
            t.autofocus[2].speedup > 1.0,
            "13 cores must win on autofocus"
        );
        assert!(
            t.ffbp_energy_ratio > 8.75,
            "energy ratio must exceed the pure power ratio"
        );
        assert!(t.ffbp_parallel_vs_seq > 4.0);
        assert!(t.autofocus_parallel_vs_seq > 2.0);
        let s = format!("{t}");
        assert!(s.contains("TABLE I"));
        assert!(s.contains("38x"));
        assert_eq!(t.records.len(), 6, "one record per configuration");
        for r in &t.records {
            assert!(!r.kernel.is_empty() && !r.mapping.is_empty() && !r.platform.is_empty());
        }
    }
}
