//! The Table I harness: run all six configurations and print the
//! paper's table with measured-vs-published columns.

use std::fmt;

use epiphany::EpiphanyParams;
use refcpu::RefCpuParams;
use serde::Serialize;

use crate::autofocus_mpmd::{self, Placement};
use crate::workloads::{AutofocusWorkload, FfbpWorkload};
use crate::{autofocus_ref, autofocus_seq, ffbp_ref, ffbp_seq, ffbp_spmd};

/// Datasheet power figures the paper uses.
pub const INTEL_POWER_W: f64 = 17.5;
/// The Epiphany chip figure from its datasheet.
pub const EPIPHANY_POWER_W: f64 = 2.0;

/// One row of Table I.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Configuration label.
    pub label: String,
    /// Cores used.
    pub cores: usize,
    /// Measured (simulated) execution time, milliseconds.
    pub time_ms: f64,
    /// Throughput in criterion pixels per second (autofocus rows).
    pub throughput_px_s: Option<f64>,
    /// Measured speedup over the Intel row of the same kernel.
    pub speedup: f64,
    /// Speedup the paper reports for this row.
    pub paper_speedup: f64,
    /// Datasheet power attributed to the configuration, watts.
    pub power_w: f64,
    /// Fine-grained modelled power (Epiphany rows only), watts.
    pub modeled_power_w: Option<f64>,
}

/// The whole table plus the derived energy-efficiency ratios.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// FFBP rows: Intel, Epiphany x1, Epiphany x16.
    pub ffbp: Vec<Table1Row>,
    /// Autofocus rows: Intel, Epiphany x1, Epiphany x13.
    pub autofocus: Vec<Table1Row>,
    /// Throughput-per-watt advantage of parallel-Epiphany FFBP over
    /// the Intel reference (paper: 38x).
    pub ffbp_energy_ratio: f64,
    /// Same for autofocus (paper: 78x).
    pub autofocus_energy_ratio: f64,
    /// FFBP parallel over sequential-Epiphany speedup (paper: 11.7x).
    pub ffbp_parallel_vs_seq: f64,
    /// Autofocus parallel over sequential-Epiphany (paper: 10.9x).
    pub autofocus_parallel_vs_seq: f64,
}

/// Run all six configurations of Table I.
pub fn table1(ffbp_w: &FfbpWorkload, af_w: &AutofocusWorkload) -> Table1 {
    // --- FFBP ---
    let f_ref = ffbp_ref::run(ffbp_w, RefCpuParams::default());
    let f_seq = ffbp_seq::run(ffbp_w, EpiphanyParams::default());
    let f_par = ffbp_spmd::run(ffbp_w, EpiphanyParams::default(), Default::default());
    let t_ref = f_ref.report.elapsed.seconds();

    let ffbp = vec![
        Table1Row {
            label: "Sequential on Intel i7 @ 2.67 GHz".into(),
            cores: 1,
            time_ms: f_ref.report.millis(),
            throughput_px_s: None,
            speedup: 1.0,
            paper_speedup: 1.0,
            power_w: INTEL_POWER_W,
            modeled_power_w: None,
        },
        Table1Row {
            label: "Sequential on Epiphany @ 1 GHz".into(),
            cores: 1,
            time_ms: f_seq.report.millis(),
            throughput_px_s: None,
            speedup: t_ref / f_seq.report.elapsed.seconds(),
            paper_speedup: 0.36,
            power_w: EPIPHANY_POWER_W,
            modeled_power_w: Some(f_seq.report.avg_power_w()),
        },
        Table1Row {
            label: "Parallel on Epiphany @ 1 GHz".into(),
            cores: 16,
            time_ms: f_par.report.millis(),
            throughput_px_s: None,
            speedup: t_ref / f_par.report.elapsed.seconds(),
            paper_speedup: 4.25,
            power_w: EPIPHANY_POWER_W,
            modeled_power_w: Some(f_par.report.avg_power_w()),
        },
    ];

    // --- Autofocus ---
    let a_ref = autofocus_ref::run(af_w, autofocus_ref::params());
    let a_seq = autofocus_seq::run(af_w, autofocus_seq::params());
    let a_par = autofocus_mpmd::run(af_w, autofocus_mpmd::params(), Placement::neighbor());
    let px = af_w.pixels() as f64;
    let thr = |secs: f64| px / secs;
    let t_aref = a_ref.report.elapsed.seconds();

    let autofocus = vec![
        Table1Row {
            label: "Sequential on Intel i7 @ 2.67 GHz".into(),
            cores: 1,
            time_ms: a_ref.report.millis(),
            throughput_px_s: Some(thr(t_aref)),
            speedup: 1.0,
            paper_speedup: 1.0,
            power_w: INTEL_POWER_W,
            modeled_power_w: None,
        },
        Table1Row {
            label: "Sequential on Epiphany @ 1 GHz".into(),
            cores: 1,
            time_ms: a_seq.report.millis(),
            throughput_px_s: Some(thr(a_seq.report.elapsed.seconds())),
            speedup: t_aref / a_seq.report.elapsed.seconds(),
            paper_speedup: 0.8,
            power_w: EPIPHANY_POWER_W,
            modeled_power_w: Some(a_seq.report.avg_power_w()),
        },
        Table1Row {
            label: "Parallel on Epiphany @ 1 GHz".into(),
            cores: 13,
            time_ms: a_par.report.millis(),
            throughput_px_s: Some(thr(a_par.report.elapsed.seconds())),
            speedup: t_aref / a_par.report.elapsed.seconds(),
            paper_speedup: 8.93,
            power_w: EPIPHANY_POWER_W,
            modeled_power_w: Some(a_par.report.avg_power_w()),
        },
    ];

    // Energy efficiency as the paper computes it: throughput per watt
    // from datasheet power.
    let ffbp_energy_ratio = ffbp[2].speedup * (INTEL_POWER_W / EPIPHANY_POWER_W);
    let autofocus_energy_ratio = autofocus[2].speedup * (INTEL_POWER_W / EPIPHANY_POWER_W);

    Table1 {
        ffbp_parallel_vs_seq: f_seq.report.elapsed.seconds() / f_par.report.elapsed.seconds(),
        autofocus_parallel_vs_seq: a_seq.report.elapsed.seconds()
            / a_par.report.elapsed.seconds(),
        ffbp,
        autofocus,
        ffbp_energy_ratio,
        autofocus_energy_ratio,
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TABLE I — Resources, Performance, and Estimated Power (measured by the model | paper)"
        )?;
        writeln!(f, "\nFFBP implementations")?;
        writeln!(
            f,
            "{:<38} {:>5} {:>12} {:>9} {:>7} {:>8}",
            "", "cores", "time (ms)", "speedup", "paper", "power W"
        )?;
        for row in &self.ffbp {
            writeln!(
                f,
                "{:<38} {:>5} {:>12.1} {:>8.2}x {:>6.2}x {:>8.1}",
                row.label, row.cores, row.time_ms, row.speedup, row.paper_speedup, row.power_w
            )?;
        }
        writeln!(f, "\nAutofocus implementations")?;
        writeln!(
            f,
            "{:<38} {:>5} {:>14} {:>9} {:>7} {:>8}",
            "", "cores", "px/s", "speedup", "paper", "power W"
        )?;
        for row in &self.autofocus {
            writeln!(
                f,
                "{:<38} {:>5} {:>14.0} {:>8.2}x {:>6.2}x {:>8.1}",
                row.label,
                row.cores,
                row.throughput_px_s.unwrap_or(0.0),
                row.speedup,
                row.paper_speedup,
                row.power_w
            )?;
        }
        writeln!(f, "\nDerived figures (measured | paper)")?;
        writeln!(
            f,
            "  FFBP parallel vs sequential Epiphany : {:>6.2}x | 11.7x",
            self.ffbp_parallel_vs_seq
        )?;
        writeln!(
            f,
            "  AF   parallel vs sequential Epiphany : {:>6.2}x | 10.9x",
            self.autofocus_parallel_vs_seq
        )?;
        writeln!(
            f,
            "  FFBP energy efficiency vs Intel      : {:>6.1}x | 38x",
            self.ffbp_energy_ratio
        )?;
        writeln!(
            f,
            "  AF   energy efficiency vs Intel      : {:>6.1}x | 78x",
            self.autofocus_energy_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_table_has_the_paper_shape() {
        // The small workload exercises the full harness quickly. The
        // *shape* must match the paper: sequential Epiphany loses to
        // Intel on FFBP, parallel wins on both kernels, and the energy
        // advantage is large.
        let t = table1(&FfbpWorkload::small(), &AutofocusWorkload::small());
        assert_eq!(t.ffbp.len(), 3);
        assert_eq!(t.autofocus.len(), 3);
        assert!(t.ffbp[1].speedup < 1.0, "seq Epiphany must lose on FFBP");
        assert!(t.ffbp[2].speedup > 1.0, "16 cores must win on FFBP");
        assert!(t.autofocus[2].speedup > 1.0, "13 cores must win on autofocus");
        assert!(t.ffbp_energy_ratio > 8.75, "energy ratio must exceed the pure power ratio");
        assert!(t.ffbp_parallel_vs_seq > 4.0);
        assert!(t.autofocus_parallel_vs_seq > 2.0);
        let s = format!("{t}");
        assert!(s.contains("TABLE I"));
        assert!(s.contains("38x"));
    }
}
