//! Workload definitions now live in the harness (shared by every
//! mapping × platform pair); re-exported here for the existing paths.

pub use sim_harness::workload::{AutofocusWorkload, FfbpWorkload, RdaWorkload};
