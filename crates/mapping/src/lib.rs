//! The paper's contribution: mapping the two SAR kernels onto the
//! Epiphany machine model, plus the reference-CPU runs and the Table I
//! harness.
//!
//! Six configurations, mirroring Table I:
//!
//! | kernel | machine | driver |
//! |---|---|---|
//! | FFBP | Intel i7 model, 1 core | [`ffbp_ref`] |
//! | FFBP | Epiphany, 1 core | [`ffbp_seq`] |
//! | FFBP | Epiphany, 16 cores SPMD | [`ffbp_spmd`] |
//! | autofocus | Intel i7 model, 1 core | [`autofocus_ref`] |
//! | autofocus | Epiphany, 1 core | [`autofocus_seq`] |
//! | autofocus | Epiphany, 13 cores MPMD | [`autofocus_mpmd`] |
//!
//! Plus the Range–Doppler kernel family grown on top of the same
//! harness: [`rda_seq`] (one Epiphany core) and [`rda_spmd`] (full
//! mesh, with an explicit tiled corner-turn phase).
//!
//! Every driver runs the *same functional kernels* from `sar-core`
//! (results are identical across machines — the paper's Fig. 7c/7d
//! observation) while feeding operation counts and memory traffic to
//! the machine model under evaluation.

#![forbid(unsafe_code)]

pub mod autofocus_mpmd;
pub mod autofocus_net;
pub mod autofocus_ref;
pub mod autofocus_seq;
pub mod ffbp_ref;
pub mod ffbp_seq;
pub mod ffbp_spmd;
pub mod harness_impls;
pub mod layout;
pub mod program_model;
pub mod rda_seq;
pub mod rda_spmd;
pub mod table1;
pub mod workloads;

pub use harness_impls::{all_mappings, mapping_named, mapping_named_placed};
pub use table1::{table1, Table1, Table1Row};
pub use workloads::{AutofocusWorkload, FfbpWorkload, RdaWorkload};
