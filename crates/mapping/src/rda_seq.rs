//! RDA on a single Epiphany core.
//!
//! The naive port, in the spirit of the sequential FFBP row: every
//! input sample is fetched from off-chip SDRAM with *blocking* reads
//! over the eLink, results are posted back with non-stalling writes.
//! Three phases over the [`RdaLayout`] regions:
//!
//! 1. `range`   — raw rows (region A) in, compressed rows out to B,
//! 2. `doppler` — *strided* column gathers from B (the corner turn a
//!    single core pays as pointwise traffic), Doppler rows out to C,
//! 3. `azimuth` — Doppler rows from C plus the RCMC-shifted gathers,
//!    focused bin-major rows out to B.

use desim::{OpCounts, RunRecord};
use epiphany::{Chip, EpiphanyParams};
use sar_core::complex::c32;
use sar_core::image::ComplexImage;
use sar_core::rda::{
    azimuth_compress, azimuth_reference, doppler_spectrum, range_compress_row, rcmc_correct,
    rcmc_shift,
};
use sar_core::signal::{lfm_chirp, MatchedFilter};

use crate::layout::RdaLayout;
use crate::workloads::RdaWorkload;

/// Outcome of the sequential Epiphany RDA run.
pub struct RdaSeqRun {
    /// Machine record (one phase per pipeline stage).
    pub record: RunRecord,
    /// The focused image.
    pub image: ComplexImage,
}

/// Execute the RDA workload on one core of the Epiphany model.
pub fn run(w: &RdaWorkload, params: EpiphanyParams) -> RdaSeqRun {
    run_traced(w, params, desim::trace::Tracer::disabled())
}

/// [`run`] with an event timeline: the chip emits its spans into
/// `tracer`.
pub fn run_traced(
    w: &RdaWorkload,
    params: EpiphanyParams,
    tracer: desim::trace::Tracer,
) -> RdaSeqRun {
    let geom = &w.geom;
    let n = geom.num_pulses;
    let bins = geom.num_bins;
    let layout = RdaLayout::new(n as u32, bins as u32, w.raw.cols() as u32);
    let mut chip = Chip::from_params(params);
    chip.set_tracer(tracer);
    let core = 0usize;
    let waveform = lfm_chirp(w.config.chirp);
    let mf = MatchedFilter::new(&waveform, w.raw.cols());
    let mut counts = OpCounts::default();
    let mut charged = OpCounts::default();
    // Blocking fetches issue back to back with nothing between them —
    // buffered per row so the chip absorbs each span in closed form.
    let mut row_reads: Vec<memsim::GlobalAddr> = Vec::with_capacity(2 * n.max(w.raw.cols()));

    // Phase 1: range compression, A -> B (pulse-major).
    chip.phase_begin("range");
    let mut rc = ComplexImage::zeros(n, bins);
    for k in 0..n {
        row_reads.clear();
        for s in 0..w.raw.cols() {
            row_reads.push(layout.raw_addr(k as u32, s as u32));
        }
        chip.read_external_run(core, &row_reads, 8);
        let row = range_compress_row(&mf, w.raw.row(k), bins, &mut counts);
        rc.row_mut(k).copy_from_slice(&row);
        let delta = counts.since(&charged);
        charged = counts;
        chip.compute(core, &delta);
        chip.write_external(core, layout.rc_addr(k as u32, 0), layout.rc_row_bytes());
    }
    chip.phase_end();

    // Phase 2: corner turn + azimuth FFT, B (strided) -> C (bin-major).
    chip.phase_begin("doppler");
    let mut rd = ComplexImage::zeros(bins, n);
    let mut col = vec![c32::ZERO; n];
    for i in 0..bins {
        row_reads.clear();
        for k in 0..n {
            row_reads.push(layout.rc_addr(k as u32, i as u32));
        }
        chip.read_external_run(core, &row_reads, 8);
        for (k, c) in col.iter_mut().enumerate() {
            *c = rc.at(k, i);
        }
        let spectrum = doppler_spectrum(&col, &mut counts);
        rd.row_mut(i).copy_from_slice(&spectrum);
        let delta = counts.since(&charged);
        charged = counts;
        chip.compute(core, &delta);
        chip.write_external(core, layout.ct_addr(i as u32, 0), layout.col_bytes());
    }
    chip.phase_end();

    // Phase 3: RCMC + azimuth compression, C -> B (bin-major).
    chip.phase_begin("azimuth");
    let mut image = ComplexImage::zeros(n, bins);
    for i in 0..bins {
        row_reads.clear();
        for m in 0..n {
            row_reads.push(layout.ct_addr(i as u32, m as u32));
        }
        if w.config.rcmc {
            // The migration gathers land on deeper bins' rows.
            for m in 0..n {
                let d = rcmc_shift(geom, i, m);
                if d > 0 && i + d < bins {
                    row_reads.push(layout.ct_addr((i + d) as u32, m as u32));
                }
            }
        }
        chip.read_external_run(core, &row_reads, 8);
        let corrected = rcmc_correct(&rd, geom, i, w.config.rcmc, &mut counts);
        let href = azimuth_reference(geom, i, &mut counts);
        let line = azimuth_compress(&corrected, &href, &mut counts);
        for k in 0..n {
            *image.at_mut(k, i) = line[(k + n / 2) % n];
        }
        let delta = counts.since(&charged);
        charged = counts;
        chip.compute(core, &delta);
        chip.write_external(core, layout.rd_addr(i as u32, 0), layout.col_bytes());
    }
    chip.phase_end();

    RdaSeqRun {
        record: chip.report("RDA / Epiphany, 1 core @ 1 GHz (sequential)", 1),
        image,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sar_core::rda::rda;

    #[test]
    fn image_matches_the_plain_algorithm() {
        let w = RdaWorkload::small();
        let machine = run(&w, EpiphanyParams::default());
        let plain = rda(&w.raw, &w.geom, &w.config);
        assert_eq!(machine.image.as_slice(), plain.image.as_slice());
    }

    #[test]
    fn every_input_sample_is_a_blocking_read() {
        let w = RdaWorkload::small();
        let r = run(&w, EpiphanyParams::default());
        let reads = r.record.counters.get("ext_read");
        let raw_samples = (w.raw.rows() * w.raw.cols()) as u64;
        let matrix = (w.geom.num_pulses * w.geom.num_bins) as u64;
        // Raw matrix + strided corner turn + Doppler rows, plus the
        // (bounded) RCMC gathers.
        assert!(reads >= raw_samples + 2 * matrix);
        assert!(reads <= raw_samples + 3 * matrix);
        assert_eq!(r.record.phases.len(), 3);
        assert_eq!(r.record.phases[1].name, "doppler");
    }
}
