//! Declarative [`ProgramModel`]s for the registered mappings — the
//! static claims `sarlint` checks without executing a simulation
//! (DESIGN.md §3 S14).
//!
//! Each builder states, for one steady-state round of its driver,
//! exactly what the driver code does: which banks hold which live
//! buffers (`crate::layout`), which producer→consumer channels stream
//! (the same graph `crate::autofocus_net` wires up), and where flags
//! and barriers synchronise. Keeping builder and driver side by side
//! in this crate is the contract: a driver change that moves a buffer
//! or a channel must update its model, and the analyzer (plus the
//! dynamic trace cross-check) catches the drift.

use desim::OpCounts;
use epiphany::Chip;
use sar_core::autofocus::criterion::{BeamStageOut, RangeStageOut};
use sar_core::autofocus::{beam_stage, correlate_partial, focus_criterion, range_stage};
use sar_core::ffbp::merge::combine_sample_with_lookup;
use sar_core::ffbp::pipeline::stage0;
use sim_harness::{BarrierDecl, Bound, FlagDecl, ProgramModel, TrafficDecl, WorkDecl};

use crate::autofocus_mpmd::Placement;
use crate::autofocus_ref::AUTOFOCUS_SUSTAINED_IPC;
use crate::autofocus_seq::AUTOFOCUS_PAIRING;
use crate::ffbp_spmd::SpmdOptions;
use crate::layout::{ExternalLayout, BANK_CHILD_A, BANK_CHILD_B};
use crate::workloads::{AutofocusWorkload, FfbpWorkload};

/// Bytes of one autofocus block in a range core's prefetch bank (a
/// 6x6 block of complex pixels, as DMA'd by the pipeline drivers).
pub const AUTOFOCUS_BLOCK_BYTES: u32 = 288;

/// Op counts of one `combine_sample` call under the workload's
/// interpolation and phase-correction settings. The kernel's counts
/// are data-independent, so a single probe on the first stage-0 pair
/// is exact for every sample of the run — the declaration can never
/// drift from the kernel, because it *is* the kernel.
fn probe_combine_sample(w: &FfbpWorkload) -> OpCounts {
    let stage = stage0(&w.data, &w.geom);
    let (a, b) = (&stage[0], &stage[1]);
    let out_grid = a.grid.refined();
    let mut counts = OpCounts::default();
    combine_sample_with_lookup(
        a,
        b,
        &w.geom,
        w.geom.bin_range(0),
        out_grid.beam_theta(0),
        b.center_y - a.center_y,
        w.config.interp,
        w.config.phase_correct,
        &mut counts,
    );
    counts
}

/// Op counts of the SPMD driver's per-row prefetch geometry probe
/// (one `merge_geometry` call) — also data-independent.
fn probe_merge_geometry() -> OpCounts {
    let mut counts = OpCounts::default();
    sar_core::geometry::merge_geometry(1.0, 0.0, 1.0, &mut counts);
    counts
}

/// Op counts of one hypothesis of the whole staged autofocus
/// criterion (what the sequential drivers charge per hypothesis).
fn probe_focus_criterion(w: &AutofocusWorkload) -> OpCounts {
    let mut counts = OpCounts::default();
    focus_criterion(&w.f_minus, &w.f_plus, 0.0, &w.config, &mut counts);
    counts
}

/// Op counts of one `range_stage`, one `beam_stage` and one
/// `correlate_partial` call — the per-firing work of the three
/// pipeline stages. All three are data-independent.
fn probe_autofocus_stages(w: &AutofocusWorkload) -> (OpCounts, OpCounts, OpCounts) {
    let cfg = &w.config;
    let mut scratch = OpCounts::default();
    let r: [RangeStageOut; 3] = [
        range_stage(&w.f_minus, 0, 0.0, 0, cfg, &mut scratch),
        range_stage(&w.f_minus, 1, 0.0, 0, cfg, &mut scratch),
        range_stage(&w.f_minus, 2, 0.0, 0, cfg, &mut scratch),
    ];
    let mut range_counts = OpCounts::default();
    range_stage(&w.f_minus, 0, 0.0, 0, cfg, &mut range_counts);
    let b: [BeamStageOut; 3] = [
        beam_stage(&r, 0, 0.0, 0, cfg, &mut scratch),
        beam_stage(&r, 1, 0.0, 0, cfg, &mut scratch),
        beam_stage(&r, 2, 0.0, 0, cfg, &mut scratch),
    ];
    let mut beam_counts = OpCounts::default();
    beam_stage(&r, 0, 0.0, 0, cfg, &mut beam_counts);
    let mut corr_counts = OpCounts::default();
    correlate_partial(&b, &b, &mut corr_counts);
    (range_counts, beam_counts, corr_counts)
}

/// FFBP on one Epiphany core: core 0 streams every contributing
/// element from external memory — no prefetch buffers, no channels.
/// `mesh` is the target platform's geometry.
pub fn ffbp_seq_model(w: &FfbpWorkload, mesh: (u16, u16)) -> ProgramModel {
    let mut m = ProgramModel::new(mesh.0, mesh.1);
    m.cores = vec![0];
    let layout = ExternalLayout::new(w.geom.num_pulses as u32, w.geom.num_bins as u32);
    let pixels = w.pixels() as f64;
    let rows = w.geom.num_pulses as f64;
    let beam_bytes = layout.beam_bytes() as f64;
    let per_sample = probe_combine_sample(w);
    let iters = u64::from(w.geom.merge_iterations());

    let mut wd = WorkDecl::new(0);
    wd.exact_ops(per_sample.scaled(w.pixels()));
    wd.compute_calls = Bound::exact(rows);
    // Each output sample fetches its in-swath contributors (of two
    // candidates) with blocking 8 B reads; edge samples can fall out
    // of one or both child swaths.
    wd.ext_read_msgs = Bound::range(0.0, 2.0 * pixels);
    wd.ext_read_bytes = Bound::range(0.0, 16.0 * pixels);
    wd.ext_write_msgs = Bound::exact(rows);
    wd.ext_write_bytes = Bound::exact(rows * beam_bytes);
    let ph = m.phase("merge", iters);
    ph.work.push(wd);
    m
}

/// The SPMD FFBP mapping (§V-A): every core prefetches its two child
/// beams into the upper banks, drains its posted writes behind a
/// per-core flag, and joins the end-of-merge barrier. `mesh` is the
/// target platform's geometry; the model mirrors the driver's sizing —
/// the declared mesh grows to the minimal covering mesh only when the
/// ablation pins more cores than the platform has, and a partial core
/// count occupies a compact subgrid.
pub fn ffbp_spmd_model(w: &FfbpWorkload, opts: &SpmdOptions, mesh: (u16, u16)) -> ProgramModel {
    let n = opts.cores.unwrap_or(mesh.0 as usize * mesh.1 as usize);
    let (cols, rows) = if n <= mesh.0 as usize * mesh.1 as usize {
        mesh
    } else {
        Chip::mesh_for_cores(n)
    };
    let mut m = ProgramModel::new(cols, rows);
    m.cores = Chip::subgrid_on(cols, rows, n);
    let layout = ExternalLayout::new(w.geom.num_pulses as u32, w.geom.num_bins as u32);
    let beam_bytes = u32::try_from(layout.beam_bytes()).expect("beam fits u32");
    for &c in &m.cores {
        if opts.prefetch {
            m.buffers.push(sim_harness::BufferDecl {
                label: format!("child_a[{c}]"),
                core: c,
                bank: BANK_CHILD_A,
                offset: 0,
                bytes: beam_bytes,
            });
            m.buffers.push(sim_harness::BufferDecl {
                label: format!("child_b[{c}]"),
                core: c,
                bank: BANK_CHILD_B,
                offset: 0,
                bytes: beam_bytes,
            });
        }
        // Posted-write drain at end of merge: each core sets and waits
        // its own flag once per round.
        m.flags.push(FlagDecl {
            label: format!("drain[{c}]"),
            setter: c,
            waiter: c,
            sets: 1,
            waits: 1,
            // Lost drains are recovered by redoing the merge iteration
            // from its checkpoint (the SPMD driver's recovery story).
            recovery: Some("checkpoint_restart".to_string()),
        });
    }
    m.barriers.push(BarrierDecl {
        label: "merge_end".to_string(),
        participants: m.cores.clone(),
        arrivals: m.cores.clone(),
    });

    // Workload: rows (output beams) are dealt round-robin over the
    // subgrid, so the core at deal position `p` owns exactly
    // `floor(P/n) + (p < P mod n)` rows per merge iteration.
    let pulses = w.geom.num_pulses;
    let bins = w.geom.num_bins as f64;
    let n_active = m.cores.len();
    let per_sample = probe_combine_sample(w);
    let per_row_probe = probe_merge_geometry();
    let beam_bytes = layout.beam_bytes() as f64;
    let iters = u64::from(w.geom.merge_iterations());
    let cores = m.cores.clone();
    let ph = m.phase("merge", iters);
    for (p, &c) in cores.iter().enumerate() {
        let rows = (pulses / n_active + usize::from(p < pulses % n_active)) as u64;
        let rows_f = rows as f64;
        let mut wd = WorkDecl::new(c);
        let mut ops = per_sample.scaled(rows * w.geom.num_bins as u64);
        ops.add(&per_row_probe.scaled(rows));
        wd.exact_ops(ops);
        wd.compute_calls = Bound::exact(if opts.prefetch { 2.0 * rows_f } else { rows_f });
        if opts.prefetch {
            // Zero to two child beams prefetched per row, depending on
            // which children the mid-range probe lands in.
            wd.dma_msgs = Bound::range(0.0, 2.0 * rows_f);
            wd.dma_bytes = Bound::range(0.0, 2.0 * rows_f * beam_bytes);
        }
        // Every contributing element the prefetch misses is a blocking
        // 8 B external read.
        wd.ext_read_msgs = Bound::range(0.0, 2.0 * rows_f * bins);
        wd.ext_read_bytes = Bound::range(0.0, 16.0 * rows_f * bins);
        wd.ext_write_msgs = Bound::exact(rows_f);
        wd.ext_write_bytes = Bound::exact(rows_f * beam_bytes);
        wd.flag_waits = Bound::exact(1.0); // posted-write drain
        ph.work.push(wd);
    }
    ph.barriers = 1;
    m
}

/// Autofocus on one Epiphany core: one DMA'd block pair in an upper
/// bank, everything else register/stack traffic.
pub fn autofocus_seq_model(w: &AutofocusWorkload, mesh: (u16, u16)) -> ProgramModel {
    let mut m = ProgramModel::new(mesh.0, mesh.1);
    m.cores = vec![0];
    m.buffer("block_pair", 0, BANK_CHILD_A, 0, 2 * AUTOFOCUS_BLOCK_BYTES);
    m.pairing_efficiency = Some(AUTOFOCUS_PAIRING);

    let setup = m.phase("setup", 1);
    let mut wd = WorkDecl::new(0);
    wd.dma_msgs = Bound::exact(1.0);
    wd.dma_bytes = Bound::exact(f64::from(2 * AUTOFOCUS_BLOCK_BYTES));
    setup.work.push(wd);

    let ph = m.phase("hypothesis", w.hypotheses as u64);
    let mut wd = WorkDecl::new(0);
    wd.exact_ops(probe_focus_criterion(w));
    wd.compute_calls = Bound::exact(1.0);
    wd.ext_write_msgs = Bound::exact(1.0);
    wd.ext_write_bytes = Bound::exact(8.0);
    ph.work.push(wd);
    m
}

/// The 13-core autofocus pipeline (§V-B), shared by the hand-written
/// MPMD driver and the `streams` network — both stream the same
/// channel graph over the same placement.
///
/// Buffers: each range core holds its DMA'd source block in an upper
/// bank; each beam core's bank 0 receives three posted range messages
/// per round; the correlator's bank 0 receives six beam messages.
/// Channels: range `(blk, win)` feeds all three beam cores of its
/// block, every beam core feeds the correlator — 24 channels, each
/// with its flag-signalled posted-write protocol.
pub fn autofocus_pipeline_model(
    w: &AutofocusWorkload,
    place: &Placement,
    mesh: (u16, u16),
) -> ProgramModel {
    PipelineProbe::net(w).model(place, mesh)
}

/// The placement-independent half of the pipeline model: per-firing op
/// counts probed from the kernels plus the workload's message
/// geometry. Probing runs the actual stage kernels (the expensive
/// part); [`PipelineProbe::model`] only wires a placement, so a
/// placement search probes once and rebuilds models per candidate
/// cheaply.
pub struct PipelineProbe {
    range_ops: OpCounts,
    beam_ops: OpCounts,
    corr_ops: OpCounts,
    per_it: u32,
    hypotheses: u64,
    /// Flag waits a range core pays per hypothesis (the streams
    /// network's actors wait on command tokens; the hand-written MPMD
    /// driver's range cores never wait).
    range_waits_per_hyp: f64,
    /// Whether every channel carries the MPMD driver's recovery story.
    mpmd_recovery: bool,
}

impl PipelineProbe {
    /// Probe for the `streams` process network (`autofocus_net`).
    pub fn net(w: &AutofocusWorkload) -> PipelineProbe {
        // The streams network waits once per firing — range actors
        // wait on their command tokens too, unlike the hand-written
        // MPMD driver.
        PipelineProbe::probed(w, 3.0, false)
    }

    /// Probe for the hand-written MPMD driver (`autofocus_mpmd`).
    pub fn mpmd(w: &AutofocusWorkload) -> PipelineProbe {
        // The hand-written driver's range cores never wait — they fire
        // as soon as the host loop reaches them.
        PipelineProbe::probed(w, 0.0, true)
    }

    fn probed(
        w: &AutofocusWorkload,
        range_waits_per_hyp: f64,
        mpmd_recovery: bool,
    ) -> PipelineProbe {
        let (range_ops, beam_ops, corr_ops) = probe_autofocus_stages(w);
        PipelineProbe {
            range_ops,
            beam_ops,
            corr_ops,
            per_it: u32::try_from(w.config.samples_per_iteration()).expect("samples fit u32"),
            hypotheses: w.hypotheses as u64,
            range_waits_per_hyp,
            mpmd_recovery,
        }
    }

    /// Wire the probed workload onto `place` (no kernel execution).
    pub fn model(&self, place: &Placement, mesh: (u16, u16)) -> ProgramModel {
        let mut m = pipeline_model_from(self, place, mesh);
        if self.mpmd_recovery {
            let covered = m.declare_recovery("range", "retry_backoff+drain_restart")
                + m.declare_recovery("beam", "retry_backoff+drain_restart");
            debug_assert!(covered > 0, "the pipeline's channels must match");
        }
        m
    }
}

fn pipeline_model_from(probe: &PipelineProbe, place: &Placement, mesh: (u16, u16)) -> ProgramModel {
    let mut m = ProgramModel::new(mesh.0, mesh.1);
    // Placements use canonical E16G3 (4-column) ids; the model mirrors
    // the drivers and renumbers onto the target mesh.
    let place = place.rebased(mesh.0, mesh.1);
    m.cores = place.cores();
    let per_it = probe.per_it;
    let range_msg = 6 * per_it * 8;
    let beam_msg = 3 * per_it * 8;

    for (blk, range_cores) in place.range.iter().enumerate() {
        for (win, &rc) in range_cores.iter().enumerate() {
            m.buffer(
                format!("block{blk}[r{win}]"),
                rc,
                BANK_CHILD_A,
                0,
                AUTOFOCUS_BLOCK_BYTES,
            );
        }
    }
    for (blk, beam_cores) in place.beam.iter().enumerate() {
        for (bi, &bc) in beam_cores.iter().enumerate() {
            for win in 0..3u32 {
                m.buffer(
                    format!("inbox_b{blk}{bi}[r{win}]"),
                    bc,
                    0,
                    win * range_msg,
                    range_msg,
                );
            }
        }
    }
    for slot in 0..6u32 {
        m.buffer(
            format!("inbox_corr[{slot}]"),
            place.corr,
            0,
            slot * beam_msg,
            beam_msg,
        );
    }

    for blk in 0..2 {
        for win in 0..3 {
            for bi in 0..3 {
                m.channel(
                    format!("range{blk}{win}->beam{blk}{bi}"),
                    place.range[blk][win],
                    place.beam[blk][bi],
                );
            }
        }
        for bi in 0..3 {
            m.channel(
                format!("beam{blk}{bi}->corr"),
                place.beam[blk][bi],
                place.corr,
            );
        }
    }

    // Workload: six range-core DMAs up front, then per hypothesis
    // three iterations of range -> beam -> correlate, every stage's
    // per-firing op counts probed from the kernels themselves.
    m.pairing_efficiency = Some(AUTOFOCUS_PAIRING);
    let setup = m.phase("setup", 1);
    for range_cores in &place.range {
        for &rc in range_cores {
            let mut wd = WorkDecl::new(rc);
            wd.dma_msgs = Bound::exact(1.0);
            wd.dma_bytes = Bound::exact(f64::from(AUTOFOCUS_BLOCK_BYTES));
            setup.work.push(wd);
        }
    }
    let ph = m.phase("hypothesis", probe.hypotheses);
    for (blk, range_cores) in place.range.iter().enumerate() {
        for &rc in range_cores {
            let mut wd = WorkDecl::new(rc);
            wd.exact_ops(probe.range_ops.scaled(3));
            wd.compute_calls = Bound::exact(3.0);
            wd.flag_waits = Bound::exact(probe.range_waits_per_hyp);
            ph.work.push(wd);
            for &bc in &place.beam[blk] {
                ph.traffic.push(TrafficDecl {
                    from: rc,
                    to: bc,
                    messages: Bound::exact(3.0),
                    bytes: Bound::exact(3.0 * f64::from(range_msg)),
                });
            }
        }
    }
    for beam_cores in &place.beam {
        for &bc in beam_cores {
            let mut wd = WorkDecl::new(bc);
            wd.exact_ops(probe.beam_ops.scaled(3));
            wd.compute_calls = Bound::exact(3.0);
            wd.flag_waits = Bound::exact(3.0);
            ph.work.push(wd);
            ph.traffic.push(TrafficDecl {
                from: bc,
                to: place.corr,
                messages: Bound::exact(3.0),
                bytes: Bound::exact(3.0 * f64::from(beam_msg)),
            });
        }
    }
    let mut wd = WorkDecl::new(place.corr);
    wd.exact_ops(probe.corr_ops.scaled(3));
    wd.compute_calls = Bound::exact(3.0);
    wd.flag_waits = Bound::exact(3.0);
    wd.ext_write_msgs = Bound::exact(1.0);
    wd.ext_write_bytes = Bound::exact(8.0);
    ph.work.push(wd);
    m
}

/// [`autofocus_pipeline_model`] as the hand-written MPMD driver
/// actually runs it: every channel (and its protocol flag) is covered
/// by the driver's recovery story — watchdog retry on a lost flag,
/// then drain-and-restart of the hypothesis with a spare-core remap
/// if the peer has halted. The `streams` network keeps the plain
/// (undeclared) model, so `sarlint` flags its channels as
/// recovery-free (SL011/SL012).
pub fn autofocus_mpmd_model(
    w: &AutofocusWorkload,
    place: &Placement,
    mesh: (u16, u16),
) -> ProgramModel {
    PipelineProbe::mpmd(w).model(place, mesh)
}

/// FFBP on the single-core reference CPU: no mesh, no banks — the
/// model exists purely for its workload declarations, so the cost
/// model can bracket the i7 rows of Table I too.
pub fn ffbp_ref_model(w: &FfbpWorkload) -> ProgramModel {
    let mut m = ProgramModel::new(1, 1);
    m.cores = vec![0];
    let pixels = w.pixels() as f64;
    let rows = w.geom.num_pulses as f64;
    let per_sample = probe_combine_sample(w);
    let ph = m.phase("merge", u64::from(w.geom.merge_iterations()));
    let mut wd = WorkDecl::new(0);
    wd.exact_ops(per_sample.scaled(w.pixels()));
    wd.compute_calls = Bound::exact(rows);
    // Per sample: one 8 B result write always, plus zero to two
    // in-swath demand reads — each touching one cache line.
    wd.mem_accesses = Bound::range(pixels, 3.0 * pixels);
    ph.work.push(wd);
    m
}

/// Autofocus on the single-core reference CPU.
pub fn autofocus_ref_model(w: &AutofocusWorkload) -> ProgramModel {
    let mut m = ProgramModel::new(1, 1);
    m.cores = vec![0];
    m.sustained_ipc = Some(AUTOFOCUS_SUSTAINED_IPC);
    let setup = m.phase("setup", 1);
    let mut wd = WorkDecl::new(0);
    // Two 288 B block reads, five 64 B lines each.
    wd.mem_accesses = Bound::exact(10.0);
    setup.work.push(wd);
    let ph = m.phase("hypothesis", w.hypotheses as u64);
    let mut wd = WorkDecl::new(0);
    wd.exact_ops(probe_focus_criterion(w));
    wd.compute_calls = Bound::exact(1.0);
    wd.mem_accesses = Bound::exact(1.0); // the 8 B criterion write-back
    ph.work.push(wd);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmd_model_declares_the_paper_footprint() {
        let w = FfbpWorkload::paper();
        let m = ffbp_spmd_model(&w, &SpmdOptions::default(), (4, 4));
        assert_eq!(m.mesh, (4, 4));
        assert_eq!(m.cores.len(), 16);
        // Two 8,008 B beams per core, one per upper bank (§V-A).
        assert_eq!(m.buffers.len(), 32);
        assert!(m.buffers.iter().all(|b| b.bytes == 8008));
        assert!(m
            .buffers
            .iter()
            .all(|b| b.bank == BANK_CHILD_A || b.bank == BANK_CHILD_B));
        assert_eq!(m.barriers.len(), 1);
        assert_eq!(m.barriers[0].participants.len(), 16);
    }

    #[test]
    fn spmd_model_without_prefetch_has_no_buffers() {
        let w = FfbpWorkload::small();
        let m = ffbp_spmd_model(
            &w,
            &SpmdOptions {
                prefetch: false,
                ..SpmdOptions::default()
            },
            (4, 4),
        );
        assert!(m.buffers.is_empty());
    }

    #[test]
    fn spmd_model_scales_to_the_e64_mesh() {
        let w = FfbpWorkload::small();
        let m = ffbp_spmd_model(&w, &SpmdOptions::default(), (8, 8));
        assert_eq!(m.mesh, (8, 8));
        assert_eq!(m.cores.len(), 64);
        assert_eq!(m.buffers.len(), 128);
        assert_eq!(m.barriers[0].participants.len(), 64);
        // A pinned 16-core ablation on the E64 occupies the 4x4
        // corner subgrid, exactly as the driver places it.
        let sub = ffbp_spmd_model(
            &w,
            &SpmdOptions {
                cores: Some(16),
                ..SpmdOptions::default()
            },
            (8, 8),
        );
        assert_eq!(sub.mesh, (8, 8));
        assert_eq!(sub.cores, Chip::subgrid_on(8, 8, 16));
        // Over-subscription falls back to the minimal covering mesh.
        let big = ffbp_spmd_model(
            &w,
            &SpmdOptions {
                cores: Some(32),
                ..SpmdOptions::default()
            },
            (4, 4),
        );
        assert_eq!(big.mesh, (8, 4));
        assert_eq!(big.cores.len(), 32);
    }

    #[test]
    fn mpmd_model_declares_recovery_on_every_channel_and_flag() {
        let w = AutofocusWorkload::small();
        let plain = autofocus_pipeline_model(&w, &Placement::neighbor(), (4, 4));
        assert!(
            plain.channels.iter().all(|c| c.recovery.is_none()),
            "the shared pipeline model stays recovery-free (the streams net has none)"
        );
        let m = autofocus_mpmd_model(&w, &Placement::neighbor(), (4, 4));
        assert!(m.channels.iter().all(|c| c.recovery.is_some()));
        assert!(m.flags.iter().all(|f| f.recovery.is_some()));
    }

    #[test]
    fn pipeline_model_matches_the_dataflow() {
        let w = AutofocusWorkload::small();
        let m = autofocus_pipeline_model(&w, &Placement::neighbor(), (4, 4));
        assert_eq!(m.cores.len(), 13);
        // 18 range->beam + 6 beam->corr channels, one flag each.
        assert_eq!(m.channels.len(), 24);
        assert_eq!(m.flags.len(), 24);
        // 6 range blocks + 18 beam inboxes + 6 correlator inboxes.
        assert_eq!(m.buffers.len(), 30);
        // Message sizes follow samples_per_iteration (48/3 = 16).
        assert!(m.buffers.iter().any(|b| b.bytes == 6 * 16 * 8));
        assert!(m.buffers.iter().any(|b| b.bytes == 3 * 16 * 8));
        assert!(m.barriers.is_empty());
    }

    #[test]
    fn pipeline_model_rebases_the_placement_onto_bigger_meshes() {
        let w = AutofocusWorkload::small();
        let e16 = autofocus_pipeline_model(&w, &Placement::neighbor(), (4, 4));
        let e64 = autofocus_pipeline_model(&w, &Placement::neighbor(), (8, 8));
        assert_eq!(e64.mesh, (8, 8));
        assert_eq!(e64.cores.len(), 13);
        // Same channel graph, and every channel spans the same hop
        // count on both meshes (the rebase preserves coordinates).
        assert_eq!(e64.channels.len(), e16.channels.len());
        for (a, b) in e16.channels.iter().zip(&e64.channels) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                e16.manhattan(a.from, a.to),
                e64.manhattan(b.from, b.to),
                "channel {} changed hop count",
                a.label
            );
        }
    }
}
