//! Declarative [`ProgramModel`]s for the registered mappings — the
//! static claims `sarlint` checks without executing a simulation
//! (DESIGN.md §3 S14).
//!
//! Each builder states, for one steady-state round of its driver,
//! exactly what the driver code does: which banks hold which live
//! buffers (`crate::layout`), which producer→consumer channels stream
//! (the same graph `crate::autofocus_net` wires up), and where flags
//! and barriers synchronise. Keeping builder and driver side by side
//! in this crate is the contract: a driver change that moves a buffer
//! or a channel must update its model, and the analyzer (plus the
//! dynamic trace cross-check) catches the drift.

use desim::OpCounts;
use epiphany::{Chip, EpiphanyParams};
use sar_core::autofocus::criterion::{BeamStageOut, RangeStageOut};
use sar_core::autofocus::{beam_stage, correlate_partial, focus_criterion, range_stage};
use sar_core::complex::c32;
use sar_core::ffbp::merge::combine_sample_with_lookup;
use sar_core::ffbp::pipeline::stage0;
use sar_core::image::ComplexImage;
use sar_core::rda::{
    azimuth_compress, azimuth_reference, doppler_spectrum, range_compress_row, rcmc_correct,
    rcmc_shift,
};
use sar_core::signal::{lfm_chirp, MatchedFilter};
use sim_harness::{BarrierDecl, Bound, FlagDecl, ProgramModel, TrafficDecl, WorkDecl};

use crate::autofocus_mpmd::Placement;
use crate::autofocus_ref::AUTOFOCUS_SUSTAINED_IPC;
use crate::autofocus_seq::AUTOFOCUS_PAIRING;
use crate::ffbp_spmd::SpmdOptions;
use crate::layout::{ExternalLayout, RdaLayout, BANK_CHILD_A, BANK_CHILD_B};
use crate::rda_spmd::{transpose_ops, RdaSpmdOptions, TILE};
use crate::workloads::{AutofocusWorkload, FfbpWorkload, RdaWorkload};

/// Bytes of one autofocus block in a range core's prefetch bank (a
/// 6x6 block of complex pixels, as DMA'd by the pipeline drivers).
pub const AUTOFOCUS_BLOCK_BYTES: u32 = 288;

/// Op counts of one `combine_sample` call under the workload's
/// interpolation and phase-correction settings. The kernel's counts
/// are data-independent, so a single probe on the first stage-0 pair
/// is exact for every sample of the run — the declaration can never
/// drift from the kernel, because it *is* the kernel.
fn probe_combine_sample(w: &FfbpWorkload) -> OpCounts {
    let stage = stage0(&w.data, &w.geom);
    let (a, b) = (&stage[0], &stage[1]);
    let out_grid = a.grid.refined();
    let mut counts = OpCounts::default();
    combine_sample_with_lookup(
        a,
        b,
        &w.geom,
        w.geom.bin_range(0),
        out_grid.beam_theta(0),
        b.center_y - a.center_y,
        w.config.interp,
        w.config.phase_correct,
        &mut counts,
    );
    counts
}

/// Op counts of the SPMD driver's per-row prefetch geometry probe
/// (one `merge_geometry` call) — also data-independent.
fn probe_merge_geometry() -> OpCounts {
    let mut counts = OpCounts::default();
    sar_core::geometry::merge_geometry(1.0, 0.0, 1.0, &mut counts);
    counts
}

/// Op counts of one hypothesis of the whole staged autofocus
/// criterion (what the sequential drivers charge per hypothesis).
fn probe_focus_criterion(w: &AutofocusWorkload) -> OpCounts {
    let mut counts = OpCounts::default();
    focus_criterion(&w.f_minus, &w.f_plus, 0.0, &w.config, &mut counts);
    counts
}

/// Op counts of one `range_stage`, one `beam_stage` and one
/// `correlate_partial` call — the per-firing work of the three
/// pipeline stages. All three are data-independent.
fn probe_autofocus_stages(w: &AutofocusWorkload) -> (OpCounts, OpCounts, OpCounts) {
    let cfg = &w.config;
    let mut scratch = OpCounts::default();
    let r: [RangeStageOut; 3] = [
        range_stage(&w.f_minus, 0, 0.0, 0, cfg, &mut scratch),
        range_stage(&w.f_minus, 1, 0.0, 0, cfg, &mut scratch),
        range_stage(&w.f_minus, 2, 0.0, 0, cfg, &mut scratch),
    ];
    let mut range_counts = OpCounts::default();
    range_stage(&w.f_minus, 0, 0.0, 0, cfg, &mut range_counts);
    let b: [BeamStageOut; 3] = [
        beam_stage(&r, 0, 0.0, 0, cfg, &mut scratch),
        beam_stage(&r, 1, 0.0, 0, cfg, &mut scratch),
        beam_stage(&r, 2, 0.0, 0, cfg, &mut scratch),
    ];
    let mut beam_counts = OpCounts::default();
    beam_stage(&r, 0, 0.0, 0, cfg, &mut beam_counts);
    let mut corr_counts = OpCounts::default();
    correlate_partial(&b, &b, &mut corr_counts);
    (range_counts, beam_counts, corr_counts)
}

/// FFBP on one Epiphany core: core 0 streams every contributing
/// element from external memory — no prefetch buffers, no channels.
/// `mesh` is the target platform's geometry.
pub fn ffbp_seq_model(w: &FfbpWorkload, mesh: (u16, u16)) -> ProgramModel {
    let mut m = ProgramModel::new(mesh.0, mesh.1);
    m.cores = vec![0];
    let layout = ExternalLayout::new(w.geom.num_pulses as u32, w.geom.num_bins as u32);
    let pixels = w.pixels() as f64;
    let rows = w.geom.num_pulses as f64;
    let beam_bytes = layout.beam_bytes() as f64;
    let per_sample = probe_combine_sample(w);
    let iters = u64::from(w.geom.merge_iterations());

    let mut wd = WorkDecl::new(0);
    wd.exact_ops(per_sample.scaled(w.pixels()));
    wd.compute_calls = Bound::exact(rows);
    // Each output sample fetches its in-swath contributors (of two
    // candidates) with blocking 8 B reads; edge samples can fall out
    // of one or both child swaths.
    wd.ext_read_msgs = Bound::range(0.0, 2.0 * pixels);
    wd.ext_read_bytes = Bound::range(0.0, 16.0 * pixels);
    wd.ext_write_msgs = Bound::exact(rows);
    wd.ext_write_bytes = Bound::exact(rows * beam_bytes);
    let ph = m.phase("merge", iters);
    ph.work.push(wd);
    m
}

/// The SPMD FFBP mapping (§V-A): every core prefetches its two child
/// beams into the upper banks, drains its posted writes behind a
/// per-core flag, and joins the end-of-merge barrier. `mesh` is the
/// target platform's geometry; the model mirrors the driver's sizing —
/// the declared mesh grows to the minimal covering mesh only when the
/// ablation pins more cores than the platform has, and a partial core
/// count occupies a compact subgrid.
pub fn ffbp_spmd_model(w: &FfbpWorkload, opts: &SpmdOptions, mesh: (u16, u16)) -> ProgramModel {
    let n = opts.cores.unwrap_or(mesh.0 as usize * mesh.1 as usize);
    let (cols, rows) = if n <= mesh.0 as usize * mesh.1 as usize {
        mesh
    } else {
        Chip::mesh_for_cores(n)
    };
    let mut m = ProgramModel::new(cols, rows);
    m.cores = Chip::subgrid_on(cols, rows, n);
    let layout = ExternalLayout::new(w.geom.num_pulses as u32, w.geom.num_bins as u32);
    let beam_bytes = u32::try_from(layout.beam_bytes()).expect("beam fits u32");
    for &c in &m.cores {
        if opts.prefetch {
            m.buffers.push(sim_harness::BufferDecl {
                label: format!("child_a[{c}]"),
                core: c,
                bank: BANK_CHILD_A,
                offset: 0,
                bytes: beam_bytes,
            });
            m.buffers.push(sim_harness::BufferDecl {
                label: format!("child_b[{c}]"),
                core: c,
                bank: BANK_CHILD_B,
                offset: 0,
                bytes: beam_bytes,
            });
        }
        // Posted-write drain at end of merge: each core sets and waits
        // its own flag once per round.
        m.flags.push(FlagDecl {
            label: format!("drain[{c}]"),
            setter: c,
            waiter: c,
            sets: 1,
            waits: 1,
            // Lost drains are recovered by redoing the merge iteration
            // from its checkpoint (the SPMD driver's recovery story).
            recovery: Some("checkpoint_restart".to_string()),
        });
    }
    m.barriers.push(BarrierDecl {
        label: "merge_end".to_string(),
        participants: m.cores.clone(),
        arrivals: m.cores.clone(),
    });

    // Workload: rows (output beams) are dealt round-robin over the
    // subgrid, so the core at deal position `p` owns exactly
    // `floor(P/n) + (p < P mod n)` rows per merge iteration.
    let pulses = w.geom.num_pulses;
    let bins = w.geom.num_bins as f64;
    let n_active = m.cores.len();
    let per_sample = probe_combine_sample(w);
    let per_row_probe = probe_merge_geometry();
    let beam_bytes = layout.beam_bytes() as f64;
    let iters = u64::from(w.geom.merge_iterations());
    let cores = m.cores.clone();
    let ph = m.phase("merge", iters);
    for (p, &c) in cores.iter().enumerate() {
        let rows = (pulses / n_active + usize::from(p < pulses % n_active)) as u64;
        let rows_f = rows as f64;
        let mut wd = WorkDecl::new(c);
        let mut ops = per_sample.scaled(rows * w.geom.num_bins as u64);
        ops.add(&per_row_probe.scaled(rows));
        wd.exact_ops(ops);
        wd.compute_calls = Bound::exact(if opts.prefetch { 2.0 * rows_f } else { rows_f });
        if opts.prefetch {
            // Zero to two child beams prefetched per row, depending on
            // which children the mid-range probe lands in.
            wd.dma_msgs = Bound::range(0.0, 2.0 * rows_f);
            wd.dma_bytes = Bound::range(0.0, 2.0 * rows_f * beam_bytes);
        }
        // Every contributing element the prefetch misses is a blocking
        // 8 B external read.
        wd.ext_read_msgs = Bound::range(0.0, 2.0 * rows_f * bins);
        wd.ext_read_bytes = Bound::range(0.0, 16.0 * rows_f * bins);
        wd.ext_write_msgs = Bound::exact(rows_f);
        wd.ext_write_bytes = Bound::exact(rows_f * beam_bytes);
        wd.flag_waits = Bound::exact(1.0); // posted-write drain
        ph.work.push(wd);
    }
    ph.barriers = 1;
    m
}

/// Autofocus on one Epiphany core: one DMA'd block pair in an upper
/// bank, everything else register/stack traffic.
pub fn autofocus_seq_model(w: &AutofocusWorkload, mesh: (u16, u16)) -> ProgramModel {
    let mut m = ProgramModel::new(mesh.0, mesh.1);
    m.cores = vec![0];
    m.buffer("block_pair", 0, BANK_CHILD_A, 0, 2 * AUTOFOCUS_BLOCK_BYTES);
    m.pairing_efficiency = Some(AUTOFOCUS_PAIRING);

    let setup = m.phase("setup", 1);
    let mut wd = WorkDecl::new(0);
    wd.dma_msgs = Bound::exact(1.0);
    wd.dma_bytes = Bound::exact(f64::from(2 * AUTOFOCUS_BLOCK_BYTES));
    setup.work.push(wd);

    let ph = m.phase("hypothesis", w.hypotheses as u64);
    let mut wd = WorkDecl::new(0);
    wd.exact_ops(probe_focus_criterion(w));
    wd.compute_calls = Bound::exact(1.0);
    wd.ext_write_msgs = Bound::exact(1.0);
    wd.ext_write_bytes = Bound::exact(8.0);
    ph.work.push(wd);
    m
}

/// The 13-core autofocus pipeline (§V-B), shared by the hand-written
/// MPMD driver and the `streams` network — both stream the same
/// channel graph over the same placement.
///
/// Buffers: each range core holds its DMA'd source block in an upper
/// bank; each beam core's bank 0 receives three posted range messages
/// per round; the correlator's bank 0 receives six beam messages.
/// Channels: range `(blk, win)` feeds all three beam cores of its
/// block, every beam core feeds the correlator — 24 channels, each
/// with its flag-signalled posted-write protocol.
pub fn autofocus_pipeline_model(
    w: &AutofocusWorkload,
    place: &Placement,
    mesh: (u16, u16),
) -> ProgramModel {
    PipelineProbe::net(w).model(place, mesh)
}

/// The placement-independent half of the pipeline model: per-firing op
/// counts probed from the kernels plus the workload's message
/// geometry. Probing runs the actual stage kernels (the expensive
/// part); [`PipelineProbe::model`] only wires a placement, so a
/// placement search probes once and rebuilds models per candidate
/// cheaply.
pub struct PipelineProbe {
    range_ops: OpCounts,
    beam_ops: OpCounts,
    corr_ops: OpCounts,
    per_it: u32,
    hypotheses: u64,
    /// Flag waits a range core pays per hypothesis (the streams
    /// network's actors wait on command tokens; the hand-written MPMD
    /// driver's range cores never wait).
    range_waits_per_hyp: f64,
    /// Whether every channel carries the MPMD driver's recovery story.
    mpmd_recovery: bool,
}

impl PipelineProbe {
    /// Probe for the `streams` process network (`autofocus_net`).
    pub fn net(w: &AutofocusWorkload) -> PipelineProbe {
        // The streams network waits once per firing — range actors
        // wait on their command tokens too, unlike the hand-written
        // MPMD driver.
        PipelineProbe::probed(w, 3.0, false)
    }

    /// Probe for the hand-written MPMD driver (`autofocus_mpmd`).
    pub fn mpmd(w: &AutofocusWorkload) -> PipelineProbe {
        // The hand-written driver's range cores never wait — they fire
        // as soon as the host loop reaches them.
        PipelineProbe::probed(w, 0.0, true)
    }

    fn probed(
        w: &AutofocusWorkload,
        range_waits_per_hyp: f64,
        mpmd_recovery: bool,
    ) -> PipelineProbe {
        let (range_ops, beam_ops, corr_ops) = probe_autofocus_stages(w);
        PipelineProbe {
            range_ops,
            beam_ops,
            corr_ops,
            per_it: u32::try_from(w.config.samples_per_iteration()).expect("samples fit u32"),
            hypotheses: w.hypotheses as u64,
            range_waits_per_hyp,
            mpmd_recovery,
        }
    }

    /// Wire the probed workload onto `place` (no kernel execution).
    pub fn model(&self, place: &Placement, mesh: (u16, u16)) -> ProgramModel {
        let mut m = pipeline_model_from(self, place, mesh);
        if self.mpmd_recovery {
            let covered = m.declare_recovery("range", "retry_backoff+drain_restart")
                + m.declare_recovery("beam", "retry_backoff+drain_restart");
            debug_assert!(covered > 0, "the pipeline's channels must match");
        }
        m
    }
}

fn pipeline_model_from(probe: &PipelineProbe, place: &Placement, mesh: (u16, u16)) -> ProgramModel {
    let mut m = ProgramModel::new(mesh.0, mesh.1);
    // Placements use canonical E16G3 (4-column) ids; the model mirrors
    // the drivers and renumbers onto the target mesh.
    let place = place.rebased(mesh.0, mesh.1);
    m.cores = place.cores();
    let per_it = probe.per_it;
    let range_msg = 6 * per_it * 8;
    let beam_msg = 3 * per_it * 8;

    for (blk, range_cores) in place.range.iter().enumerate() {
        for (win, &rc) in range_cores.iter().enumerate() {
            m.buffer(
                format!("block{blk}[r{win}]"),
                rc,
                BANK_CHILD_A,
                0,
                AUTOFOCUS_BLOCK_BYTES,
            );
        }
    }
    for (blk, beam_cores) in place.beam.iter().enumerate() {
        for (bi, &bc) in beam_cores.iter().enumerate() {
            for win in 0..3u32 {
                m.buffer(
                    format!("inbox_b{blk}{bi}[r{win}]"),
                    bc,
                    0,
                    win * range_msg,
                    range_msg,
                );
            }
        }
    }
    for slot in 0..6u32 {
        m.buffer(
            format!("inbox_corr[{slot}]"),
            place.corr,
            0,
            slot * beam_msg,
            beam_msg,
        );
    }

    for blk in 0..2 {
        for win in 0..3 {
            for bi in 0..3 {
                m.channel(
                    format!("range{blk}{win}->beam{blk}{bi}"),
                    place.range[blk][win],
                    place.beam[blk][bi],
                );
            }
        }
        for bi in 0..3 {
            m.channel(
                format!("beam{blk}{bi}->corr"),
                place.beam[blk][bi],
                place.corr,
            );
        }
    }

    // Workload: six range-core DMAs up front, then per hypothesis
    // three iterations of range -> beam -> correlate, every stage's
    // per-firing op counts probed from the kernels themselves.
    m.pairing_efficiency = Some(AUTOFOCUS_PAIRING);
    let setup = m.phase("setup", 1);
    for range_cores in &place.range {
        for &rc in range_cores {
            let mut wd = WorkDecl::new(rc);
            wd.dma_msgs = Bound::exact(1.0);
            wd.dma_bytes = Bound::exact(f64::from(AUTOFOCUS_BLOCK_BYTES));
            setup.work.push(wd);
        }
    }
    let ph = m.phase("hypothesis", probe.hypotheses);
    for (blk, range_cores) in place.range.iter().enumerate() {
        for &rc in range_cores {
            let mut wd = WorkDecl::new(rc);
            wd.exact_ops(probe.range_ops.scaled(3));
            wd.compute_calls = Bound::exact(3.0);
            wd.flag_waits = Bound::exact(probe.range_waits_per_hyp);
            ph.work.push(wd);
            for &bc in &place.beam[blk] {
                ph.traffic.push(TrafficDecl {
                    from: rc,
                    to: bc,
                    messages: Bound::exact(3.0),
                    bytes: Bound::exact(3.0 * f64::from(range_msg)),
                });
            }
        }
    }
    for beam_cores in &place.beam {
        for &bc in beam_cores {
            let mut wd = WorkDecl::new(bc);
            wd.exact_ops(probe.beam_ops.scaled(3));
            wd.compute_calls = Bound::exact(3.0);
            wd.flag_waits = Bound::exact(3.0);
            ph.work.push(wd);
            ph.traffic.push(TrafficDecl {
                from: bc,
                to: place.corr,
                messages: Bound::exact(3.0),
                bytes: Bound::exact(3.0 * f64::from(beam_msg)),
            });
        }
    }
    let mut wd = WorkDecl::new(place.corr);
    wd.exact_ops(probe.corr_ops.scaled(3));
    wd.compute_calls = Bound::exact(3.0);
    wd.flag_waits = Bound::exact(3.0);
    wd.ext_write_msgs = Bound::exact(1.0);
    wd.ext_write_bytes = Bound::exact(8.0);
    ph.work.push(wd);
    m
}

/// [`autofocus_pipeline_model`] as the hand-written MPMD driver
/// actually runs it: every channel (and its protocol flag) is covered
/// by the driver's recovery story — watchdog retry on a lost flag,
/// then drain-and-restart of the hypothesis with a spare-core remap
/// if the peer has halted. The `streams` network keeps the plain
/// (undeclared) model, so `sarlint` flags its channels as
/// recovery-free (SL011/SL012).
pub fn autofocus_mpmd_model(
    w: &AutofocusWorkload,
    place: &Placement,
    mesh: (u16, u16),
) -> ProgramModel {
    PipelineProbe::mpmd(w).model(place, mesh)
}

/// Per-unit op ledgers of the three RDA pipeline stages, probed by
/// running the stage kernels themselves once. All three are
/// data-independent (the `sar_core::rda` tests pin that), so a single
/// probe per stage is exact for every row/bin of the run.
struct RdaStageProbe {
    per_range_row: OpCounts,
    per_doppler_bin: OpCounts,
    per_azimuth_bin: OpCounts,
}

fn probe_rda_stages(w: &RdaWorkload) -> RdaStageProbe {
    let n = w.geom.num_pulses;
    let bins = w.geom.num_bins;
    let waveform = lfm_chirp(w.config.chirp);
    let mf = MatchedFilter::new(&waveform, w.raw.cols());
    let mut per_range_row = OpCounts::default();
    range_compress_row(&mf, w.raw.row(0), bins, &mut per_range_row);
    let mut per_doppler_bin = OpCounts::default();
    doppler_spectrum(&vec![c32::ZERO; n], &mut per_doppler_bin);
    let rd = ComplexImage::zeros(bins, n);
    let mut per_azimuth_bin = OpCounts::default();
    let corrected = rcmc_correct(&rd, &w.geom, 0, w.config.rcmc, &mut per_azimuth_bin);
    let href = azimuth_reference(&w.geom, 0, &mut per_azimuth_bin);
    azimuth_compress(&corrected, &href, &mut per_azimuth_bin);
    RdaStageProbe {
        per_range_row,
        per_doppler_bin,
        per_azimuth_bin,
    }
}

/// Exact RCMC gather count per bin — the blocking external reads the
/// azimuth phase issues for migration cells that land on deeper
/// in-swath rows, computed exactly as the drivers compute them.
fn rcmc_gathers_per_bin(w: &RdaWorkload) -> Vec<u64> {
    let n = w.geom.num_pulses;
    let bins = w.geom.num_bins;
    (0..bins)
        .map(|i| {
            if !w.config.rcmc {
                return 0;
            }
            (0..n)
                .filter(|&m| {
                    let d = rcmc_shift(&w.geom, i, m);
                    d > 0 && i + d < bins
                })
                .count() as u64
        })
        .collect()
}

/// RDA on one Epiphany core: three phases over the [`RdaLayout`]
/// regions, every input sample a blocking 8 B external read, every
/// result row a posted external write — no DMA, flags or barriers.
pub fn rda_seq_model(w: &RdaWorkload, mesh: (u16, u16)) -> ProgramModel {
    let mut m = ProgramModel::new(mesh.0, mesh.1);
    m.cores = vec![0];
    let layout = RdaLayout::new(
        w.geom.num_pulses as u32,
        w.geom.num_bins as u32,
        w.raw.cols() as u32,
    );
    let probe = probe_rda_stages(w);
    let pulses = w.geom.num_pulses as u64;
    let bins = w.geom.num_bins as u64;
    let echo = w.raw.cols() as u64;
    let gathers: u64 = rcmc_gathers_per_bin(w).iter().sum();

    let ph = m.phase("range", 1);
    let mut wd = WorkDecl::new(0);
    wd.exact_ops(probe.per_range_row.scaled(pulses));
    wd.compute_calls = Bound::exact(pulses as f64);
    wd.ext_read_msgs = Bound::exact((pulses * echo) as f64);
    wd.ext_read_bytes = Bound::exact((8 * pulses * echo) as f64);
    wd.ext_write_msgs = Bound::exact(pulses as f64);
    wd.ext_write_bytes = Bound::exact((pulses * layout.rc_row_bytes()) as f64);
    ph.work.push(wd);

    // The corner turn a single core pays as strided pointwise reads.
    let ph = m.phase("doppler", 1);
    let mut wd = WorkDecl::new(0);
    wd.exact_ops(probe.per_doppler_bin.scaled(bins));
    wd.compute_calls = Bound::exact(bins as f64);
    wd.ext_read_msgs = Bound::exact((bins * pulses) as f64);
    wd.ext_read_bytes = Bound::exact((8 * bins * pulses) as f64);
    wd.ext_write_msgs = Bound::exact(bins as f64);
    wd.ext_write_bytes = Bound::exact((bins * layout.col_bytes()) as f64);
    ph.work.push(wd);

    let ph = m.phase("azimuth", 1);
    let mut wd = WorkDecl::new(0);
    wd.exact_ops(probe.per_azimuth_bin.scaled(bins));
    wd.compute_calls = Bound::exact(bins as f64);
    wd.ext_read_msgs = Bound::exact((bins * pulses + gathers) as f64);
    wd.ext_read_bytes = Bound::exact((8 * (bins * pulses + gathers)) as f64);
    wd.ext_write_msgs = Bound::exact(bins as f64);
    wd.ext_write_bytes = Bound::exact((bins * layout.col_bytes()) as f64);
    ph.work.push(wd);
    m
}

/// The SPMD RDA mapping: four phases with work units dealt round-robin
/// over the subgrid. Each core stages DMA landings (raw pulse rows,
/// corner-turn tiles, bin-major rows) in its two upper banks — the
/// model declares them bank-sized, since the raw-row head and the
/// paper-scale bin-major rows fill one whole bank. Every phase drains
/// its posted writes behind a per-core flag and ends on a barrier, and
/// a lost core is recovered by redoing the phase from its input region
/// (checkpoint/restart).
pub fn rda_spmd_model(w: &RdaWorkload, opts: &RdaSpmdOptions, mesh: (u16, u16)) -> ProgramModel {
    let n_req = opts.cores.unwrap_or(mesh.0 as usize * mesh.1 as usize);
    let (cols, rows) = if n_req <= mesh.0 as usize * mesh.1 as usize {
        mesh
    } else {
        Chip::mesh_for_cores(n_req)
    };
    let mut m = ProgramModel::new(cols, rows);
    m.cores = Chip::subgrid_on(cols, rows, n_req);
    let bank = EpiphanyParams::default().sram.bank_bytes;
    let layout = RdaLayout::new(
        w.geom.num_pulses as u32,
        w.geom.num_bins as u32,
        w.raw.cols() as u32,
    );
    let probe = probe_rda_stages(w);
    let gathers = rcmc_gathers_per_bin(w);
    let pulses = w.geom.num_pulses;
    let bins = w.geom.num_bins;
    let nc = m.cores.len();

    let raw_row = layout.raw_row_bytes();
    let cores = m.cores.clone();
    for &c in &cores {
        // Bank A receives every inbound landing: raw-row heads,
        // corner-turn tiles and bin-major rows. Bank B only ever
        // receives the raw-row *tail*, which exists when the row
        // overflows one bank (it does at paper scale); the corner
        // turn's outbound tile is staged there but written locally,
        // never landed.
        m.buffer(format!("stage_a[{c}]"), c, BANK_CHILD_A, 0, bank);
        if raw_row > u64::from(bank) {
            #[allow(clippy::cast_possible_truncation)]
            let tail = (raw_row - u64::from(bank)) as u32;
            m.buffer(format!("raw_tail[{c}]"), c, BANK_CHILD_B, 0, tail);
        }
        m.flags.push(FlagDecl {
            label: format!("drain[{c}]"),
            setter: c,
            waiter: c,
            sets: 1,
            waits: 1,
            // A lost drain is recovered by redoing the phase from its
            // intact input region.
            recovery: Some("checkpoint_restart".to_string()),
        });
    }
    m.barriers.push(BarrierDecl {
        label: "phase_end".to_string(),
        participants: cores.clone(),
        arrivals: cores.clone(),
    });

    // Phase 1: one raw pulse row DMA'd in per owned pulse (two
    // descriptors when the row overflows one bank), the compressed row
    // posted back.
    let descs_per_row = if raw_row > u64::from(bank) { 2.0 } else { 1.0 };
    let ph = m.phase("range", 1);
    for (p, &c) in cores.iter().enumerate() {
        let owned_rows = (pulses / nc + usize::from(p < pulses % nc)) as u64;
        let owned = owned_rows as f64;
        let mut wd = WorkDecl::new(c);
        wd.exact_ops(probe.per_range_row.scaled(owned_rows));
        wd.compute_calls = Bound::exact(owned);
        wd.dma_msgs = Bound::exact(descs_per_row * owned);
        wd.dma_bytes = Bound::exact(owned * raw_row as f64);
        wd.ext_write_msgs = Bound::exact(owned);
        wd.ext_write_bytes = Bound::exact(owned * layout.rc_row_bytes() as f64);
        wd.flag_waits = Bound::exact(1.0);
        ph.work.push(wd);
    }
    ph.barriers = 1;

    // Phase 2: the tiled corner turn — per owned tile one strided 2D
    // DMA in, a local transpose, one strided 2D DMA out. Pure traffic.
    let tile_rows = pulses.div_ceil(TILE);
    let tile_cols = bins.div_ceil(TILE);
    let mut tiles_per = vec![0u64; nc];
    let mut elems_per = vec![0u64; nc];
    let mut task = 0usize;
    for ti in 0..tile_rows {
        for tj in 0..tile_cols {
            let p = task % nc;
            task += 1;
            let r = TILE.min(pulses - ti * TILE);
            let c = TILE.min(bins - tj * TILE);
            tiles_per[p] += 1;
            elems_per[p] += (r * c) as u64;
        }
    }
    let ph = m.phase("corner_turn", 1);
    for (p, &c) in cores.iter().enumerate() {
        let mut wd = WorkDecl::new(c);
        wd.exact_ops(transpose_ops(elems_per[p]));
        wd.compute_calls = Bound::exact(tiles_per[p] as f64);
        wd.dma_msgs = Bound::exact(2.0 * tiles_per[p] as f64);
        wd.dma_bytes = Bound::exact(2.0 * 8.0 * elems_per[p] as f64);
        wd.flag_waits = Bound::exact(1.0);
        ph.work.push(wd);
    }
    ph.barriers = 1;

    // Phases 3 and 4: bin-major rows dealt round-robin; the azimuth
    // phase additionally issues its exact per-bin RCMC gathers as
    // blocking 8 B reads.
    let col_bytes = layout.col_bytes() as f64;
    let ph = m.phase("doppler", 1);
    for (p, &c) in cores.iter().enumerate() {
        let owned_bins = (bins / nc + usize::from(p < bins % nc)) as u64;
        let owned = owned_bins as f64;
        let mut wd = WorkDecl::new(c);
        wd.exact_ops(probe.per_doppler_bin.scaled(owned_bins));
        wd.compute_calls = Bound::exact(owned);
        wd.dma_msgs = Bound::exact(owned);
        wd.dma_bytes = Bound::exact(owned * col_bytes);
        wd.ext_write_msgs = Bound::exact(owned);
        wd.ext_write_bytes = Bound::exact(owned * col_bytes);
        wd.flag_waits = Bound::exact(1.0);
        ph.work.push(wd);
    }
    ph.barriers = 1;

    let ph = m.phase("azimuth", 1);
    for (p, &c) in cores.iter().enumerate() {
        let owned_bins = (bins / nc + usize::from(p < bins % nc)) as u64;
        let owned = owned_bins as f64;
        let g: u64 = gathers.iter().skip(p).step_by(nc).sum();
        let mut wd = WorkDecl::new(c);
        wd.exact_ops(probe.per_azimuth_bin.scaled(owned_bins));
        wd.compute_calls = Bound::exact(owned);
        wd.dma_msgs = Bound::exact(owned);
        wd.dma_bytes = Bound::exact(owned * col_bytes);
        wd.ext_read_msgs = Bound::exact(g as f64);
        wd.ext_read_bytes = Bound::exact(8.0 * g as f64);
        wd.ext_write_msgs = Bound::exact(owned);
        wd.ext_write_bytes = Bound::exact(owned * col_bytes);
        wd.flag_waits = Bound::exact(1.0);
        ph.work.push(wd);
    }
    ph.barriers = 1;
    m
}

/// FFBP on the single-core reference CPU: no mesh, no banks — the
/// model exists purely for its workload declarations, so the cost
/// model can bracket the i7 rows of Table I too.
pub fn ffbp_ref_model(w: &FfbpWorkload) -> ProgramModel {
    let mut m = ProgramModel::new(1, 1);
    m.cores = vec![0];
    let pixels = w.pixels() as f64;
    let rows = w.geom.num_pulses as f64;
    let per_sample = probe_combine_sample(w);
    let ph = m.phase("merge", u64::from(w.geom.merge_iterations()));
    let mut wd = WorkDecl::new(0);
    wd.exact_ops(per_sample.scaled(w.pixels()));
    wd.compute_calls = Bound::exact(rows);
    // Per sample: one 8 B result write always, plus zero to two
    // in-swath demand reads — each touching one cache line.
    wd.mem_accesses = Bound::range(pixels, 3.0 * pixels);
    ph.work.push(wd);
    m
}

/// Autofocus on the single-core reference CPU.
pub fn autofocus_ref_model(w: &AutofocusWorkload) -> ProgramModel {
    let mut m = ProgramModel::new(1, 1);
    m.cores = vec![0];
    m.sustained_ipc = Some(AUTOFOCUS_SUSTAINED_IPC);
    let setup = m.phase("setup", 1);
    let mut wd = WorkDecl::new(0);
    // Two 288 B block reads, five 64 B lines each.
    wd.mem_accesses = Bound::exact(10.0);
    setup.work.push(wd);
    let ph = m.phase("hypothesis", w.hypotheses as u64);
    let mut wd = WorkDecl::new(0);
    wd.exact_ops(probe_focus_criterion(w));
    wd.compute_calls = Bound::exact(1.0);
    wd.mem_accesses = Bound::exact(1.0); // the 8 B criterion write-back
    ph.work.push(wd);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmd_model_declares_the_paper_footprint() {
        let w = FfbpWorkload::paper();
        let m = ffbp_spmd_model(&w, &SpmdOptions::default(), (4, 4));
        assert_eq!(m.mesh, (4, 4));
        assert_eq!(m.cores.len(), 16);
        // Two 8,008 B beams per core, one per upper bank (§V-A).
        assert_eq!(m.buffers.len(), 32);
        assert!(m.buffers.iter().all(|b| b.bytes == 8008));
        assert!(m
            .buffers
            .iter()
            .all(|b| b.bank == BANK_CHILD_A || b.bank == BANK_CHILD_B));
        assert_eq!(m.barriers.len(), 1);
        assert_eq!(m.barriers[0].participants.len(), 16);
    }

    #[test]
    fn spmd_model_without_prefetch_has_no_buffers() {
        let w = FfbpWorkload::small();
        let m = ffbp_spmd_model(
            &w,
            &SpmdOptions {
                prefetch: false,
                ..SpmdOptions::default()
            },
            (4, 4),
        );
        assert!(m.buffers.is_empty());
    }

    #[test]
    fn spmd_model_scales_to_the_e64_mesh() {
        let w = FfbpWorkload::small();
        let m = ffbp_spmd_model(&w, &SpmdOptions::default(), (8, 8));
        assert_eq!(m.mesh, (8, 8));
        assert_eq!(m.cores.len(), 64);
        assert_eq!(m.buffers.len(), 128);
        assert_eq!(m.barriers[0].participants.len(), 64);
        // A pinned 16-core ablation on the E64 occupies the 4x4
        // corner subgrid, exactly as the driver places it.
        let sub = ffbp_spmd_model(
            &w,
            &SpmdOptions {
                cores: Some(16),
                ..SpmdOptions::default()
            },
            (8, 8),
        );
        assert_eq!(sub.mesh, (8, 8));
        assert_eq!(sub.cores, Chip::subgrid_on(8, 8, 16));
        // Over-subscription falls back to the minimal covering mesh.
        let big = ffbp_spmd_model(
            &w,
            &SpmdOptions {
                cores: Some(32),
                ..SpmdOptions::default()
            },
            (4, 4),
        );
        assert_eq!(big.mesh, (8, 4));
        assert_eq!(big.cores.len(), 32);
    }

    #[test]
    fn mpmd_model_declares_recovery_on_every_channel_and_flag() {
        let w = AutofocusWorkload::small();
        let plain = autofocus_pipeline_model(&w, &Placement::neighbor(), (4, 4));
        assert!(
            plain.channels.iter().all(|c| c.recovery.is_none()),
            "the shared pipeline model stays recovery-free (the streams net has none)"
        );
        let m = autofocus_mpmd_model(&w, &Placement::neighbor(), (4, 4));
        assert!(m.channels.iter().all(|c| c.recovery.is_some()));
        assert!(m.flags.iter().all(|f| f.recovery.is_some()));
    }

    #[test]
    fn pipeline_model_matches_the_dataflow() {
        let w = AutofocusWorkload::small();
        let m = autofocus_pipeline_model(&w, &Placement::neighbor(), (4, 4));
        assert_eq!(m.cores.len(), 13);
        // 18 range->beam + 6 beam->corr channels, one flag each.
        assert_eq!(m.channels.len(), 24);
        assert_eq!(m.flags.len(), 24);
        // 6 range blocks + 18 beam inboxes + 6 correlator inboxes.
        assert_eq!(m.buffers.len(), 30);
        // Message sizes follow samples_per_iteration (48/3 = 16).
        assert!(m.buffers.iter().any(|b| b.bytes == 6 * 16 * 8));
        assert!(m.buffers.iter().any(|b| b.bytes == 3 * 16 * 8));
        assert!(m.barriers.is_empty());
    }

    #[test]
    fn rda_seq_model_declares_every_input_sample_as_a_blocking_read() {
        let w = RdaWorkload::small();
        let m = rda_seq_model(&w, (4, 4));
        assert_eq!(m.cores, vec![0]);
        assert!(m.buffers.is_empty() && m.flags.is_empty() && m.barriers.is_empty());
        assert_eq!(m.workload.len(), 3);
        let names: Vec<&str> = m.workload.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["range", "doppler", "azimuth"]);
        // The range phase reads the whole raw matrix, once.
        let range = &m.workload[0].work[0];
        let raw_samples = (w.raw.rows() * w.raw.cols()) as f64;
        assert_eq!(range.ext_read_msgs, Bound::exact(raw_samples));
        assert_eq!(range.ext_read_bytes, Bound::exact(8.0 * raw_samples));
        // The azimuth phase reads at least the full bin-major matrix
        // (plus the exact RCMC gathers).
        let matrix = (w.geom.num_pulses * w.geom.num_bins) as f64;
        let az = &m.workload[2].work[0];
        assert!(az.ext_read_msgs.lo >= matrix);
        assert_eq!(az.ext_read_msgs.lo, az.ext_read_msgs.hi);
    }

    #[test]
    fn rda_spmd_model_declares_the_staging_banks_and_the_corner_turn() {
        let w = RdaWorkload::small();
        let m = rda_spmd_model(&w, &RdaSpmdOptions::default(), (4, 4));
        assert_eq!(m.cores.len(), 16);
        // One bank-sized staging buffer per core at small scale (raw
        // rows fit one bank); the paper-scale rows overflow into the
        // second upper bank, adding a tail buffer per core.
        assert_eq!(m.buffers.len(), 16);
        assert!(m.buffers.iter().all(|b| b.bank == BANK_CHILD_A));
        let paper = rda_spmd_model(&RdaWorkload::paper(), &RdaSpmdOptions::default(), (4, 4));
        assert_eq!(paper.buffers.len(), 32);
        assert!(paper
            .buffers
            .iter()
            .all(|b| b.bank == BANK_CHILD_A || b.bank == BANK_CHILD_B));
        assert_eq!(m.flags.len(), 16);
        assert!(m.flags.iter().all(|f| f.recovery.is_some()));
        assert_eq!(m.barriers[0].participants.len(), 16);
        assert_eq!(m.workload.len(), 4);
        assert_eq!(m.workload[1].name, "corner_turn");
        // The corner turn moves the whole matrix twice (in and out)
        // and nothing else: no external blocking reads, no posted rows.
        let matrix_bytes = (w.geom.num_pulses * w.geom.num_bins * 8) as f64;
        let ct = &m.workload[1];
        let dma: f64 = ct.work.iter().map(|wd| wd.dma_bytes.lo).sum();
        assert!((dma - 2.0 * matrix_bytes).abs() < 1e-6);
        assert!(ct.work.iter().all(|wd| wd.ext_read_msgs == Bound::zero()));
        assert!(ct.work.iter().all(|wd| wd.ext_write_msgs == Bound::zero()));
        // Tile count matches the driver's tiling.
        let tiles: f64 = ct.work.iter().map(|wd| wd.compute_calls.lo).sum();
        let expect = w.geom.num_pulses.div_ceil(TILE) * w.geom.num_bins.div_ceil(TILE);
        assert!((tiles - expect as f64).abs() < 1e-6);
    }

    #[test]
    fn rda_spmd_model_respects_the_core_pin_and_the_e64_mesh() {
        let w = RdaWorkload::small();
        let e64 = rda_spmd_model(&w, &RdaSpmdOptions::default(), (8, 8));
        assert_eq!(e64.mesh, (8, 8));
        assert_eq!(e64.cores.len(), 64);
        let pinned = rda_spmd_model(&w, &RdaSpmdOptions { cores: Some(4) }, (4, 4));
        assert_eq!(pinned.cores, Chip::subgrid_on(4, 4, 4));
        // Work totals are invariant under the deal: the same matrix
        // moves whether 4 or 64 cores carry it.
        let total = |m: &ProgramModel, ph: usize| -> f64 {
            m.workload[ph].work.iter().map(|wd| wd.dma_bytes.lo).sum()
        };
        assert!((total(&e64, 1) - total(&pinned, 1)).abs() < 1e-6);
    }

    #[test]
    fn pipeline_model_rebases_the_placement_onto_bigger_meshes() {
        let w = AutofocusWorkload::small();
        let e16 = autofocus_pipeline_model(&w, &Placement::neighbor(), (4, 4));
        let e64 = autofocus_pipeline_model(&w, &Placement::neighbor(), (8, 8));
        assert_eq!(e64.mesh, (8, 8));
        assert_eq!(e64.cores.len(), 13);
        // Same channel graph, and every channel spans the same hop
        // count on both meshes (the rebase preserves coordinates).
        assert_eq!(e64.channels.len(), e16.channels.len());
        for (a, b) in e16.channels.iter().zip(&e64.channels) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                e16.manhattan(a.from, a.to),
                e64.manhattan(b.from, b.to),
                "channel {} changed hop count",
                a.label
            );
        }
    }
}
