//! The autofocus pipeline expressed as a `streams` process network —
//! the paper's occam-pi "raise the abstraction level" direction made
//! concrete. Compare with [`crate::autofocus_mpmd`]: that driver
//! hand-manages every flag wait and remote write (the paper's
//! "increases the burden on the programmer"); this one declares
//! thirteen actors and their channels and lets the network do the
//! synchronisation. Both compute identical criteria on the same
//! machine model.

use std::cell::RefCell;
use std::rc::Rc;

use desim::{OpCounts, RunRecord};
use epiphany::dma::DmaDirection;
use epiphany::{Chip, EpiphanyParams};
use memsim::GlobalAddr;
use sar_core::autofocus::criterion::{
    beam_stage, correlate_partial, range_stage, AutofocusConfig, BeamStageOut, RangeStageOut,
};
use sar_core::autofocus::{best_shift, Block6};
use streams::{Actor, FireCtx, Network};

use crate::autofocus_mpmd::Placement;
use crate::layout::BANK_CHILD_A;
use crate::workloads::AutofocusWorkload;

/// Tokens flowing through the pipeline.
pub enum AfToken {
    /// Work order for a range actor: resample its block at `shift`
    /// for sweep iteration `iteration`.
    Cmd {
        /// Per-block resampling shift (already halved and signed).
        shift: f32,
        /// Criterion iteration, 0..3.
        iteration: usize,
    },
    /// A range actor's window output.
    Range {
        /// Interpolated rows.
        out: Box<RangeStageOut>,
        /// Propagated shift.
        shift: f32,
        /// Propagated iteration.
        iteration: usize,
    },
    /// A beam actor's window output.
    Beam {
        /// Interpolated windows.
        out: Box<BeamStageOut>,
        /// The hypothesis shift (for result bookkeeping; the trailing
        /// block's sign is normalised back by the correlator's caller).
        shift: f32,
    },
}

struct RangeActor {
    block: Block6,
    window: usize,
    cfg: AutofocusConfig,
}

impl Actor<AfToken> for RangeActor {
    fn fire(&mut self, mut inputs: Vec<AfToken>, ctx: &mut FireCtx<'_, AfToken>) {
        let AfToken::Cmd { shift, iteration } = inputs.remove(0) else {
            panic!("range actor expects Cmd tokens");
        };
        let mut counts = OpCounts::default();
        let out = range_stage(
            &self.block,
            self.window,
            shift,
            iteration,
            &self.cfg,
            &mut counts,
        );
        ctx.charge(&counts);
        let bytes = 6 * self.cfg.samples_per_iteration() as u64 * 8;
        for port in 0..3 {
            ctx.send(
                port,
                AfToken::Range {
                    out: Box::new(out.clone()),
                    shift,
                    iteration,
                },
                bytes,
            );
        }
    }
}

struct BeamActor {
    window: usize,
    cfg: AutofocusConfig,
}

impl Actor<AfToken> for BeamActor {
    fn fire(&mut self, inputs: Vec<AfToken>, ctx: &mut FireCtx<'_, AfToken>) {
        let mut range_out: [Option<RangeStageOut>; 3] = Default::default();
        let mut shift = 0.0f32;
        let mut iteration = 0usize;
        for (slot, tok) in inputs.into_iter().enumerate() {
            let AfToken::Range {
                out,
                shift: s,
                iteration: it,
            } = tok
            else {
                panic!("beam actor expects Range tokens");
            };
            range_out[slot] = Some(*out);
            shift = s;
            iteration = it;
        }
        let range_out = range_out.map(|o| o.expect("three range inputs"));
        let mut counts = OpCounts::default();
        let out = beam_stage(
            &range_out,
            self.window,
            shift,
            iteration,
            &self.cfg,
            &mut counts,
        );
        ctx.charge(&counts);
        let bytes = 3 * self.cfg.samples_per_iteration() as u64 * 8;
        ctx.send(
            0,
            AfToken::Beam {
                out: Box::new(out),
                shift,
            },
            bytes,
        );
    }
}

struct CorrActor {
    /// `(hypothesis shift of the leading block, accumulated criterion)`
    /// per hypothesis, three iterations accumulated in place.
    results: Rc<RefCell<Vec<(f32, f32)>>>,
}

impl Actor<AfToken> for CorrActor {
    fn fire(&mut self, inputs: Vec<AfToken>, _ctx: &mut FireCtx<'_, AfToken>) {
        assert_eq!(inputs.len(), 6, "correlator joins six beam streams");
        let mut minus: [Option<BeamStageOut>; 3] = Default::default();
        let mut plus: [Option<BeamStageOut>; 3] = Default::default();
        let mut hyp_shift = 0.0f32;
        for (slot, tok) in inputs.into_iter().enumerate() {
            let AfToken::Beam { out, shift } = tok else {
                panic!("correlator expects Beam tokens");
            };
            if slot < 3 {
                minus[slot] = Some(*out);
            } else {
                plus[slot - 3] = Some(*out);
                hyp_shift = 2.0 * shift; // leading block carries +shift/2
            }
        }
        let minus = minus.map(|o| o.expect("three minus inputs"));
        let plus = plus.map(|o| o.expect("three plus inputs"));
        let mut counts = OpCounts::default();
        let partial = correlate_partial(&minus, &plus, &mut counts);
        _ctx.charge(&counts);
        let mut results = self.results.borrow_mut();
        match results.last_mut() {
            Some((s, acc)) if *s == hyp_shift => *acc += partial,
            _ => results.push((hyp_shift, partial)),
        }
    }
}

/// Outcome of the network run.
pub struct AutofocusNetRun {
    /// Machine record (one phase per hypothesis, with the channels'
    /// high-water queue depth as a per-phase metric).
    pub record: RunRecord,
    /// `(shift, criterion)` per hypothesis.
    pub sweep: Vec<(f32, f32)>,
    /// The winning compensation.
    pub best: (f32, f32),
    /// Total actor firings (pipeline activity).
    pub firings: u64,
}

/// Run the workload on the declarative pipeline with `place`.
pub fn run(w: &AutofocusWorkload, params: EpiphanyParams, place: Placement) -> AutofocusNetRun {
    run_traced(w, params, place, desim::trace::Tracer::disabled())
}

/// [`run`] with an event timeline: the chip emits its spans into
/// `tracer`.
pub fn run_traced(
    w: &AutofocusWorkload,
    params: EpiphanyParams,
    place: Placement,
    tracer: desim::trace::Tracer,
) -> AutofocusNetRun {
    let mut chip = Chip::from_params(params);
    chip.set_tracer(tracer);
    // Placements use canonical E16G3 (4-column) ids; renumber onto
    // the chip's actual mesh, preserving coordinates and hop counts.
    let place = place.rebased(chip.mesh_dims().0, chip.mesh_dims().1);
    let mut net: Network<AfToken> = Network::new(chip);
    let results = Rc::new(RefCell::new(Vec::new()));

    // Initial block loads, as in the hand-written mapping.
    for (blk, cores) in place.range.iter().enumerate() {
        for &rc in cores {
            let d = net.chip_mut().dma_start(
                rc,
                DmaDirection::ExternalToLocal,
                GlobalAddr::external(blk as u32 * 288),
                BANK_CHILD_A,
                288,
            );
            net.chip_mut().dma_wait(rc, d);
        }
    }

    // Thirteen actors.
    let corr = net.add_actor(
        "corr",
        place.corr,
        Box::new(CorrActor {
            results: results.clone(),
        }),
    );
    let mut range_ids = [[None; 3], [None; 3]];
    let mut beam_ids = [[None; 3], [None; 3]];
    // Index-style loops below mirror the placement tables; the indices
    // *are* the dataflow coordinates (block, window), so keep them.
    #[allow(clippy::needless_range_loop)]
    for blk in 0..2 {
        let block = if blk == 0 { w.f_minus } else { w.f_plus };
        for win in 0..3 {
            range_ids[blk][win] = Some(net.add_actor(
                &format!("range{blk}{win}"),
                place.range[blk][win],
                Box::new(RangeActor {
                    block,
                    window: win,
                    cfg: w.config,
                }),
            ));
        }
        for win in 0..3 {
            beam_ids[blk][win] = Some(net.add_actor(
                &format!("beam{blk}{win}"),
                place.beam[blk][win],
                Box::new(BeamActor {
                    window: win,
                    cfg: w.config,
                }),
            ));
        }
    }
    // Channels: each range actor feeds all three beam actors of its
    // block (the beam actor's input port = the range window index)...
    #[allow(clippy::needless_range_loop)]
    for blk in 0..2 {
        for win in 0..3 {
            for b in 0..3 {
                net.connect(range_ids[blk][win].unwrap(), beam_ids[blk][b].unwrap());
            }
        }
    }
    // Wait: port order on the beam actor must be range windows 0,1,2 —
    // connections above iterate (win, b), giving beam b inputs in
    // window order 0,1,2 as required. The correlator's six ports are
    // block 0 beams 0-2 then block 1 beams 0-2:
    #[allow(clippy::needless_range_loop)]
    for blk in 0..2 {
        for b in 0..3 {
            net.connect(beam_ids[blk][b].unwrap(), corr);
        }
    }

    // Drive the sweep one hypothesis at a time: feed that hypothesis'
    // command tokens, let the network drain, write the criterion back —
    // one observable phase per hypothesis.
    let mut firings = 0u64;
    for h in 0..w.hypotheses {
        net.chip_mut().phase_begin("hypothesis");
        let shift = -w.max_shift + 2.0 * w.max_shift * h as f32 / (w.hypotheses - 1) as f32;
        for it in 0..3 {
            for (blk, sign) in [(0usize, -0.5f32), (1, 0.5)] {
                #[allow(clippy::needless_range_loop)]
                for win in 0..3 {
                    net.feed(
                        range_ids[blk][win].unwrap(),
                        AfToken::Cmd {
                            shift: sign * shift,
                            iteration: it,
                        },
                        16,
                    );
                }
            }
        }
        firings += net.run();
        net.chip_mut()
            .write_external(place.corr, GlobalAddr::external(0x10000 + 8 * h as u32), 8);
        let peak = net.take_queue_peak();
        net.chip_mut().phase_metric("queue_peak", peak as f64);
        net.chip_mut().phase_end();
    }

    let record = net
        .chip()
        .report("Autofocus / Epiphany, 13 cores (streams network)", 13);
    let sweep = results.borrow().clone();
    let best = best_shift(&sweep);
    AutofocusNetRun {
        record,
        sweep,
        best,
        firings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autofocus_mpmd;
    use crate::autofocus_seq::AUTOFOCUS_PAIRING;

    fn params() -> EpiphanyParams {
        EpiphanyParams {
            pairing_efficiency: AUTOFOCUS_PAIRING,
            ..EpiphanyParams::default()
        }
    }

    #[test]
    fn network_matches_the_hand_written_mapping_numerically() {
        let w = AutofocusWorkload::small();
        let net = run(&w, params(), Placement::neighbor());
        let hand = autofocus_mpmd::run(&w, autofocus_mpmd::params(), Placement::neighbor());
        assert_eq!(net.sweep.len(), hand.sweep.len());
        for ((s1, v1), (s2, v2)) in net.sweep.iter().zip(&hand.sweep) {
            assert!((s1 - s2).abs() < 1e-6, "shift grid mismatch: {s1} vs {s2}");
            assert!(
                (v1 - v2).abs() <= 1e-3 * v2.abs().max(1.0),
                "criterion mismatch at {s1}: {v1} vs {v2}"
            );
        }
        assert_eq!(net.best.0, hand.best.0);
    }

    #[test]
    fn network_timing_is_close_to_the_hand_written_mapping() {
        // The declarative version pays nothing material for its
        // abstraction: same compute, same placement, same message
        // sizes; scheduling differences stay within a small band.
        let w = AutofocusWorkload::paper();
        let net = run(&w, params(), Placement::neighbor());
        let hand = autofocus_mpmd::run(&w, autofocus_mpmd::params(), Placement::neighbor());
        let ratio = net.record.elapsed.seconds() / hand.record.elapsed.seconds();
        assert!(
            (0.7..1.4).contains(&ratio),
            "streams/hand-written time ratio {ratio:.2} out of band ({} vs {} ms)",
            net.record.millis(),
            hand.record.millis()
        );
    }

    #[test]
    fn firing_count_matches_the_dataflow() {
        let w = AutofocusWorkload::small();
        let net = run(&w, params(), Placement::neighbor());
        // Per (hypothesis, iteration): 6 range + 6 beam + 1 corr = 13.
        let rounds = w.hypotheses as u64 * 3;
        assert_eq!(net.firings, 13 * rounds);
    }

    #[test]
    fn recovers_the_injected_error() {
        let w = AutofocusWorkload::paper();
        let net = run(&w, params(), Placement::neighbor());
        assert!(
            (net.best.0 - w.true_shift).abs() <= 0.15,
            "found {} expected {}",
            net.best.0,
            w.true_shift
        );
    }
}
