//! FFBP on 16 Epiphany cores, SPMD (Table I row 3).
//!
//! The paper's mapping: the *output* image of every merge is divided
//! into independent slices (here: output beams, dealt round-robin so
//! the load balances); each core DMA-prefetches the contributing
//! subaperture data its slice maps to — one child beam per upper local
//! bank, the "two pulses, 16,016 bytes" of the paper — and computes
//! the slice from local memory. During the first merge iteration the
//! prefetched data covers everything; in later iterations the child
//! observation angles spread across range, so a growing fraction of
//! contributing elements misses the prefetched window and falls back
//! to blocking external reads, all sixteen cores contending for the
//! one eLink. Results are posted back to SDRAM with non-stalling
//! writes. This is exactly the behaviour the paper describes — and the
//! reason the 16-core speedup saturates at ~12x over one core.

use desim::{Cycle, OpCounts, RunRecord};
use epiphany::dma::DmaDirection;
use epiphany::{Chip, EpiphanyParams};
use faultsim::FaultState;
use sar_core::ffbp::grid::Subaperture;
use sar_core::ffbp::interp::nearest_indices;
use sar_core::ffbp::merge::combine_sample_with_lookup;
use sar_core::ffbp::pipeline::stage0;
use sar_core::geometry::merge_geometry;
use sar_core::image::ComplexImage;

use crate::layout::{ExternalLayout, BANK_CHILD_A, BANK_CHILD_B};
use crate::workloads::FfbpWorkload;

/// Knobs for the ablation benches.
#[derive(Debug, Clone, Copy)]
pub struct SpmdOptions {
    /// Cores to use. `None` (the default) means every core the
    /// platform's mesh provides — 16 on the E16G3, 64 on the E64.
    /// `Some(n)` pins the count for ablations; when `n` is smaller
    /// than the chip, the work runs on a compact
    /// [`Chip::subgrid_cores`] subgrid so hop counts match a dedicated
    /// `n`-core chip.
    pub cores: Option<usize>,
    /// DMA-prefetch the mapped child beams (ablation: off = every
    /// contributing element is a blocking external read).
    pub prefetch: bool,
}

impl Default for SpmdOptions {
    fn default() -> Self {
        SpmdOptions {
            cores: None,
            prefetch: true,
        }
    }
}

/// Outcome of the SPMD run.
pub struct FfbpSpmdRun {
    /// Machine record (one phase per merge iteration, carrying that
    /// iteration's time, energy, eLink utilisation and hit/miss split).
    pub record: RunRecord,
    /// The formed image.
    pub image: ComplexImage,
    /// Contributing-element reads served from the prefetched banks.
    pub local_hits: u64,
    /// Contributing-element reads that went to external memory.
    pub external_misses: u64,
}

/// Execute the FFBP workload on the Epiphany model with `opts`.
pub fn run(w: &FfbpWorkload, params: EpiphanyParams, opts: SpmdOptions) -> FfbpSpmdRun {
    run_traced(w, params, opts, desim::trace::Tracer::disabled())
}

/// [`run`] with an event timeline: the chip emits its spans into
/// `tracer`.
pub fn run_traced(
    w: &FfbpWorkload,
    params: EpiphanyParams,
    opts: SpmdOptions,
    tracer: desim::trace::Tracer,
) -> FfbpSpmdRun {
    run_faulted(w, params, opts, tracer, FaultState::disabled())
}

/// [`run_traced`] under a fault schedule. The recovery story is
/// checkpoint/restart at merge-iteration granularity: every
/// iteration's inputs live in SDRAM (the previous stage's output), so
/// a core that halts mid-iteration is detected at the end-of-merge
/// health check, dropped from the active set, and the whole iteration
/// is redone on the survivors — the paper's 16-core mapping degrades
/// to a 15-core one instead of hanging. The redone work is accounted
/// as recovery cycles/energy in the fault record; the formed image is
/// bit-identical to the fault-free run because the restart recomputes
/// the same output slice values. With `faults` disabled this is
/// exactly [`run_traced`].
pub fn run_faulted(
    w: &FfbpWorkload,
    params: EpiphanyParams,
    opts: SpmdOptions,
    tracer: desim::trace::Tracer,
    faults: FaultState,
) -> FfbpSpmdRun {
    let geom = &w.geom;
    let n_cores = opts.cores.unwrap_or_else(|| params.cores());
    // The platform's declared mesh, unless the ablation asks for more
    // cores than it has — then the minimal covering mesh.
    let mut chip = if n_cores <= params.cores() {
        Chip::from_params(params)
    } else {
        Chip::with_cores(params, n_cores)
    };
    chip.set_tracer(tracer);
    chip.set_faults(faults.clone());
    assert!(
        n_cores <= chip.cores(),
        "requested more cores than the chip has"
    );
    // Cores still participating; halted cores drop out at the
    // end-of-iteration health check. A partial set occupies a compact
    // subgrid so its communication pattern matches a dedicated chip.
    let mut active: Vec<usize> = chip.subgrid_cores(n_cores);

    let layout = ExternalLayout::new(geom.num_pulses as u32, geom.num_bins as u32);
    let mut counts = OpCounts::default();
    let mut charged = OpCounts::default();
    let mut local_hits = 0u64;
    let mut external_misses = 0u64;
    let r_mid = geom.bin_range(geom.num_bins / 2);

    let mut stage: Vec<Subaperture> = stage0(&w.data, geom);
    let mut stage_idx = 0u32;

    while stage.len() > 1 {
        // One checkpointed attempt per pass: if a core halts during
        // the iteration, drop it from the active set and redo the
        // whole iteration — the inputs (previous stage) are still in
        // SDRAM, and the output region is simply rewritten.
        let next = loop {
            let attempt_t0 = chip.elapsed();
            let attempt_e0 = if faults.is_enabled() {
                chip.energy().total_j()
            } else {
                0.0
            };
            chip.phase_begin("merge");
            let (hits0, misses0) = (local_hits, external_misses);
            let child_beams = stage[0].grid.n_beams as u32;
            let out_grid = stage[0].grid.refined();
            let mut next: Vec<Subaperture> = stage
                .chunks(2)
                .map(|p| {
                    Subaperture::zeros(
                        (p[0].center_y + p[1].center_y) / 2.0,
                        p[0].length + p[1].length,
                        out_grid,
                        geom.num_bins,
                    )
                })
                .collect();

            // Work units: one output beam each, dealt round-robin
            // over the surviving cores. Indexed by chip core id —
            // subgrid ids are sparse, so size for the whole chip.
            let mut last_write: Vec<Cycle> = vec![Cycle::ZERO; chip.cores()];
            let mut task = 0usize;
            // Blocking miss fetches issue back to back with no other
            // chip calls between them (the interleaved merge
            // arithmetic is host-side) — buffered per row so the chip
            // can absorb each span in closed form.
            let mut row_misses = Vec::new();
            for (pair_idx, pair) in stage.chunks(2).enumerate() {
                let (a, b) = (&pair[0], &pair[1]);
                let l = b.center_y - a.center_y;
                let beam_base_a = 2 * pair_idx as u32 * child_beams;
                let beam_base_b = beam_base_a + child_beams;
                let out_beam_base = pair_idx as u32 * out_grid.n_beams as u32;

                for j in 0..out_grid.n_beams {
                    let core = active[task % active.len()];
                    task += 1;
                    let theta = out_grid.beam_theta(j);
                    row_misses.clear();

                    // Which child beams does this output beam map to at mid
                    // range? Prefetch those two (one per upper bank).
                    let mut pf_counts = OpCounts::default();
                    let mid = merge_geometry(r_mid, theta, l, &mut pf_counts);
                    let pf_a = nearest_indices(a, geom, mid.r1, mid.theta1).map(|(_, beam)| beam);
                    let pf_b = nearest_indices(b, geom, mid.r2, mid.theta2).map(|(_, beam)| beam);
                    if opts.prefetch {
                        chip.compute(core, &pf_counts);
                        let mut done = Cycle::ZERO;
                        if let Some(beam) = pf_a {
                            let addr = layout.addr(stage_idx, beam_base_a + beam as u32, 0);
                            done = done.max(chip.dma_start(
                                core,
                                DmaDirection::ExternalToLocal,
                                addr,
                                BANK_CHILD_A,
                                layout.beam_bytes(),
                            ));
                        }
                        if let Some(beam) = pf_b {
                            let addr = layout.addr(stage_idx, beam_base_b + beam as u32, 0);
                            done = done.max(chip.dma_start(
                                core,
                                DmaDirection::ExternalToLocal,
                                addr,
                                BANK_CHILD_B,
                                layout.beam_bytes(),
                            ));
                        }
                        chip.dma_wait(core, done);
                    }

                    for i in 0..geom.num_bins {
                        let r = geom.bin_range(i);
                        let (v, look) = combine_sample_with_lookup(
                            a,
                            b,
                            geom,
                            r,
                            theta,
                            l,
                            w.config.interp,
                            w.config.phase_correct,
                            &mut counts,
                        );
                        // Classify each contributing element: prefetched
                        // bank (local load, already in the op counts) or
                        // blocking external read.
                        for (child, base, pf) in [
                            (
                                nearest_indices(a, geom, look.r1, look.theta1),
                                beam_base_a,
                                pf_a,
                            ),
                            (
                                nearest_indices(b, geom, look.r2, look.theta2),
                                beam_base_b,
                                pf_b,
                            ),
                        ] {
                            if let Some((bin, beam)) = child {
                                if opts.prefetch && pf == Some(beam) {
                                    local_hits += 1;
                                } else {
                                    external_misses += 1;
                                    row_misses.push(layout.addr(
                                        stage_idx,
                                        base + beam as u32,
                                        bin as u32,
                                    ));
                                }
                            }
                        }
                        *next[pair_idx].data.at_mut(j, i) = v;
                    }
                    chip.read_external_run(core, &row_misses, 8);
                    let delta = counts.since(&charged);
                    charged = counts;
                    chip.compute(core, &delta);
                    let row_addr = layout.addr(stage_idx + 1, out_beam_base + j as u32, 0);
                    let arrival = chip.write_external(core, row_addr, layout.beam_bytes());
                    last_write[core] = last_write[core].max(arrival);
                }
            }

            // End of iteration: drain posted writes (the next stage
            // reads this one's output), then barrier.
            for &core in &active {
                chip.wait_flag(core, last_write[core]);
            }
            chip.barrier(&active);
            chip.phase_metric("local_hits", (local_hits - hits0) as f64);
            chip.phase_metric("external_misses", (external_misses - misses0) as f64);

            // Health check at the checkpoint: cores that halted during
            // this iteration may have dropped their output slices, so
            // the iteration cannot be trusted and is redone without
            // them.
            let dead: Vec<usize> = faults
                .newly_halted(chip.elapsed())
                .into_iter()
                .map(|c| c as usize)
                .filter(|c| active.contains(c))
                .collect();
            if dead.is_empty() {
                chip.phase_end();
                break next;
            }
            chip.phase_metric("halted_cores", dead.len() as f64);
            chip.phase_end();
            active.retain(|c| !dead.contains(c));
            assert!(
                !active.is_empty(),
                "every core halted; the SPMD mapping cannot recover"
            );
            faults.add_degraded_cores(dead.len() as u64);
            faults.add_recovery_cycles(chip.elapsed().saturating_sub(attempt_t0).raw());
            faults.add_recovery_energy((chip.energy().total_j() - attempt_e0).max(0.0));
        };
        stage = next;
        stage_idx += 1;
    }

    let full = stage.into_iter().next().expect("non-empty stage");
    let mut record = chip.report(
        &format!("FFBP / Epiphany, {n_cores} cores @ 1 GHz (SPMD)"),
        n_cores,
    );
    record.set_metric("local_hits", local_hits as f64);
    record.set_metric("external_misses", external_misses as f64);
    FfbpSpmdRun {
        record,
        image: full.data,
        local_hits,
        external_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffbp_seq;
    use sar_core::ffbp::ffbp;

    #[test]
    fn image_matches_the_plain_algorithm() {
        let w = FfbpWorkload::small();
        let machine = run(&w, EpiphanyParams::default(), SpmdOptions::default());
        let plain = ffbp(&w.data, &w.geom, &w.config);
        assert_eq!(machine.image.as_slice(), plain.image.as_slice());
    }

    #[test]
    fn parallel_beats_sequential_substantially() {
        // Note the comparison is against the *naive* sequential port
        // (per-element blocking SDRAM reads, as in the paper), so the
        // ratio can exceed the core count when prefetch removes those
        // stalls entirely — on the small workload every access is
        // covered. The paper-scale run lands at ~12x (Table I: 11.7x)
        // because later iterations spill to external memory.
        let w = FfbpWorkload::small();
        let par = run(&w, EpiphanyParams::default(), SpmdOptions::default());
        let seq = ffbp_seq::run(&w, EpiphanyParams::default());
        let speedup = seq.record.elapsed.seconds() / par.record.elapsed.seconds();
        assert!(
            speedup > 4.0,
            "16-core SPMD should be far faster than 1 core, got {speedup:.2}x"
        );
        // Sanity ceiling: cores x worst-case blocking-read amplification.
        assert!(speedup < 100.0, "speedup {speedup:.2}x is absurd");
    }

    #[test]
    fn first_iteration_is_fully_local() {
        // Run a single-merge workload: 2 pulses -> 1 merge. All
        // contributing data is covered by the prefetched beams.
        let mut w = FfbpWorkload::small();
        let geom = sar_core::geometry::SarGeometry {
            num_pulses: 2,
            ..w.geom
        };
        let scene = sar_core::scene::Scene::single_target(geom);
        w.geom = geom;
        w.data = sar_core::scene::simulate_compressed_data(&scene, 0.0, 1);
        let r = run(&w, EpiphanyParams::default(), SpmdOptions::default());
        assert_eq!(
            r.external_misses, 0,
            "single-pulse children have one beam: prefetch must cover everything"
        );
        assert!(r.local_hits > 0);
    }

    #[test]
    fn later_iterations_miss_the_prefetched_window() {
        // Spill outside the prefetched beams needs a deep aperture at
        // close range: the child observation angle then sweeps across
        // many child beams over the swath. (The small test geometry is
        // shallow enough that prefetch covers everything — precisely
        // the "first iterations are local" half of the paper's story.)
        let geom = sar_core::geometry::SarGeometry {
            num_pulses: 256,
            r0: 300.0,
            ..sar_core::geometry::SarGeometry::test_size()
        };
        let scene = sar_core::scene::Scene::single_target(geom);
        let w = FfbpWorkload {
            geom,
            data: sar_core::scene::simulate_compressed_data(&scene, 0.0, 3),
            config: Default::default(),
        };
        let r = run(&w, EpiphanyParams::default(), SpmdOptions::default());
        assert!(
            r.external_misses > 0,
            "deep merges must spill outside the two prefetched beams"
        );
        // But prefetch still covers the majority overall.
        let total = r.local_hits + r.external_misses;
        assert!(
            r.local_hits * 2 > total,
            "prefetch should cover most accesses: {} of {}",
            r.local_hits,
            total
        );
    }

    #[test]
    fn disabling_prefetch_hurts() {
        let w = FfbpWorkload::small();
        let with = run(&w, EpiphanyParams::default(), SpmdOptions::default());
        let without = run(
            &w,
            EpiphanyParams::default(),
            SpmdOptions {
                prefetch: false,
                ..SpmdOptions::default()
            },
        );
        assert!(without.record.elapsed.seconds() > with.record.elapsed.seconds());
        assert_eq!(without.local_hits, 0);
    }

    #[test]
    fn core_halt_degrades_to_fifteen_cores_with_an_identical_image() {
        use faultsim::{FaultEvent, FaultPlan};
        let w = FfbpWorkload::small();
        let clean = run(&w, EpiphanyParams::default(), SpmdOptions::default());
        let plan = FaultPlan::from_events(
            11,
            vec![FaultEvent::CoreHalt {
                core: 5,
                at: Cycle(1_000),
            }],
        );
        let faults = FaultState::from_plan(&plan);
        let r = run_faulted(
            &w,
            EpiphanyParams::default(),
            SpmdOptions::default(),
            desim::trace::Tracer::disabled(),
            faults.clone(),
        );
        assert_eq!(
            r.image.as_slice(),
            clean.image.as_slice(),
            "checkpoint/restart must reproduce the fault-free image bit-for-bit"
        );
        let totals = faults.totals();
        assert_eq!(totals.degraded_cores, 1);
        assert_eq!(totals.faults_injected, 1);
        assert!(
            totals.recovery_cycles > 0,
            "the redone iteration is paid for"
        );
        assert!(totals.recovery_energy_j > 0.0);
        assert_eq!(r.record.faults, totals, "report() stamps the fault totals");
        assert!(
            r.record.elapsed.cycles.raw() > clean.record.elapsed.cycles.raw(),
            "recovery cannot be free"
        );
    }

    #[test]
    fn core_halt_recovery_is_deterministic() {
        use faultsim::{FaultEvent, FaultPlan};
        let w = FfbpWorkload::small();
        let plan = FaultPlan::from_events(
            7,
            vec![FaultEvent::CoreHalt {
                core: 3,
                at: Cycle(5_000),
            }],
        );
        let go = || {
            run_faulted(
                &w,
                EpiphanyParams::default(),
                SpmdOptions::default(),
                desim::trace::Tracer::disabled(),
                FaultState::from_plan(&plan),
            )
        };
        let (a, b) = (go(), go());
        assert_eq!(a.record.elapsed.cycles, b.record.elapsed.cycles);
        assert_eq!(a.record.faults, b.record.faults);
        assert_eq!(a.image.as_slice(), b.image.as_slice());
    }

    #[test]
    fn e64_forms_the_same_image_and_runs_no_slower() {
        let w = FfbpWorkload::small();
        let e16 = run(&w, EpiphanyParams::default(), SpmdOptions::default());
        let e64 = run(&w, EpiphanyParams::e64(), SpmdOptions::default());
        assert!(
            e64.record.label.contains("64 cores"),
            "{}",
            e64.record.label
        );
        assert_eq!(
            e64.image.as_slice(),
            e16.image.as_slice(),
            "the formed image is independent of the mesh"
        );
        assert!(e64.record.elapsed.seconds() <= e16.record.elapsed.seconds());
    }

    #[test]
    fn a_16_core_subgrid_of_the_e64_matches_the_e16_image() {
        // The scale-out acceptance check at driver level: pinning the
        // paper's 16-core slice assignment onto the E64's 4x4 corner
        // subgrid reproduces the E16G3 image bit for bit.
        let w = FfbpWorkload::small();
        let e16 = run(&w, EpiphanyParams::default(), SpmdOptions::default());
        let sub = run(
            &w,
            EpiphanyParams::e64(),
            SpmdOptions {
                cores: Some(16),
                ..SpmdOptions::default()
            },
        );
        assert_eq!(sub.image.as_slice(), e16.image.as_slice());
        assert!(sub.record.label.contains("16 cores"));
    }

    #[test]
    fn fewer_cores_run_longer() {
        let w = FfbpWorkload::small();
        let four = run(
            &w,
            EpiphanyParams::default(),
            SpmdOptions {
                cores: Some(4),
                ..SpmdOptions::default()
            },
        );
        let sixteen = run(&w, EpiphanyParams::default(), SpmdOptions::default());
        assert!(four.record.elapsed.seconds() > sixteen.record.elapsed.seconds());
    }
}
