//! Autofocus criterion as a 13-core MPMD streaming pipeline
//! (Table I row 6, mapping of Figure 9).
//!
//! Per contributing image block: three *range interpolator* cores (one
//! per 4-column window) and three *beam interpolator* cores (one per
//! 4-row window); a single *correlation + summation* core serves both
//! blocks — 2 x (3 + 3) + 1 = 13 cores, with three spare for the rest
//! of the chain. Intermediate results stream between neighbouring
//! cores as posted cMesh writes with flag synchronisation; nothing but
//! the initial block load and the final criterion touches off-chip
//! memory. The custom placement keeps every producer-consumer pair
//! within a couple of hops — the paper credits this (plus the 64x
//! on-chip/off-chip bandwidth ratio) for the pipeline not bottlenecking
//! at the correlator.

use desim::{Cycle, OpCounts, RunRecord};
use epiphany::dma::DmaDirection;
use epiphany::{Chip, EpiphanyParams};
use faultsim::FaultState;
use memsim::GlobalAddr;
use sar_core::autofocus::criterion::{BeamStageOut, RangeStageOut};
use sar_core::autofocus::{beam_stage, best_shift, correlate_partial, range_stage};

use crate::autofocus_seq::AUTOFOCUS_PAIRING;
use crate::layout::BANK_CHILD_A;
use crate::workloads::AutofocusWorkload;

/// Epiphany parameters specialised to this kernel.
pub fn params() -> EpiphanyParams {
    EpiphanyParams {
        pairing_efficiency: AUTOFOCUS_PAIRING,
        ..EpiphanyParams::default()
    }
}

// The placement type lives in the harness (so `RunContext` can carry
// an override and `autotune` can search over it); re-exported here
// where it historically lived, next to the drivers that consume it.
pub use sim_harness::Placement;

/// Outcome of the MPMD run.
pub struct AutofocusMpmdRun {
    /// Machine record (one phase per hypothesis, with per-stage
    /// occupancy and correlator wait/queue-depth metrics).
    pub record: RunRecord,
    /// `(shift, criterion)` per hypothesis.
    pub sweep: Vec<(f32, f32)>,
    /// The winning compensation.
    pub best: (f32, f32),
}

/// Execute the autofocus workload on the 13-core pipeline.
pub fn run(w: &AutofocusWorkload, params: EpiphanyParams, place: Placement) -> AutofocusMpmdRun {
    run_traced(w, params, place, desim::trace::Tracer::disabled())
}

/// [`run`] with an event timeline: the chip emits its spans into
/// `tracer`.
pub fn run_traced(
    w: &AutofocusWorkload,
    params: EpiphanyParams,
    place: Placement,
    tracer: desim::trace::Tracer,
) -> AutofocusMpmdRun {
    run_faulted(w, params, place, tracer, FaultState::disabled())
}

/// [`run_traced`] under a fault schedule. Two recovery policies
/// compose here: every inter-stage flag message goes through
/// [`Chip::send_reliable`] (producer-side watchdog, so a dropped flag
/// costs a timeout and a re-send instead of a hang), and a core that
/// halts permanently is handled by *drain-and-restart* — the current
/// hypothesis's in-flight results are discarded, the dead core's
/// stage is remapped onto one of the three spare cores
/// ([`Placement::remap`], re-staging the block data if it was a range
/// core), and the hypothesis is re-run on the repaired pipeline. The
/// sweep is bit-identical to the fault-free run because a restarted
/// hypothesis recomputes exactly the same values. With `faults`
/// disabled this is exactly [`run_traced`].
pub fn run_faulted(
    w: &AutofocusWorkload,
    params: EpiphanyParams,
    mut place: Placement,
    tracer: desim::trace::Tracer,
    faults: FaultState,
) -> AutofocusMpmdRun {
    assert_eq!(
        place.cores().len(),
        13,
        "the mapping must use 13 distinct cores"
    );
    let mut chip = Chip::from_params(params);
    chip.set_tracer(tracer);
    chip.set_faults(faults.clone());
    // Placements are written in E16G3 (4-column) ids; renumber onto
    // the chip's actual mesh, preserving coordinates and hop counts.
    place = place.rebased(chip.mesh_dims().0, chip.mesh_dims().1);

    // The three cores the 13-core mapping leaves idle: the spare pool
    // for remapping around permanent halts.
    let mut spares: Vec<usize> = (0..chip.cores())
        .filter(|c| !place.cores().contains(c))
        .collect();

    // Initial load: each range core DMAs its block from SDRAM.
    for (blk, range_cores) in place.range.iter().enumerate() {
        for &rc in range_cores {
            let d = chip.dma_start(
                rc,
                DmaDirection::ExternalToLocal,
                GlobalAddr::external(blk as u32 * 288),
                BANK_CHILD_A,
                288,
            );
            chip.dma_wait(rc, d);
        }
    }

    let per_it = w.config.samples_per_iteration() as u64;
    let range_msg_bytes = 6 * per_it * 8; // six rows of complex samples
    let beam_msg_bytes = 3 * per_it * 8; // three windows of complex samples

    let mut counts = [OpCounts::default(); 13];
    let mut charged = [OpCounts::default(); 13];

    // Stage occupancy: share of the phase's span each stage's cores
    // spent busy. All snapshots are pure reads of the chip's cursors —
    // the instrumentation never advances time.
    let stage_busy = |chip: &Chip, stage_cores: &[usize]| -> u64 {
        stage_cores.iter().map(|&c| chip.busy(c).0).sum()
    };

    let mut sweep = Vec::with_capacity(w.hypotheses);
    for h in 0..w.hypotheses {
        // One attempt per pass; a permanent halt discards the attempt
        // (drain-and-restart) and re-runs it on the repaired pipeline.
        'attempt: loop {
            // The placement can change between attempts, so the slot
            // map and stage groupings are derived fresh each time.
            let cores = place.cores();
            let core_slot =
                |core: usize| cores.iter().position(|&c| c == core).expect("mapped core");
            let range_cores: Vec<usize> = place.range.iter().flatten().copied().collect();
            let beam_cores: Vec<usize> = place.beam.iter().flatten().copied().collect();

            let attempt_e0 = if faults.is_enabled() {
                chip.energy().total_j()
            } else {
                0.0
            };
            chip.phase_begin("hypothesis");
            let t0 = chip.elapsed();
            let range_busy0 = stage_busy(&chip, &range_cores);
            let beam_busy0 = stage_busy(&chip, &beam_cores);
            let corr_busy0 = chip.busy(place.corr).0;
            let mut corr_wait_cycles = 0u64;
            let mut corr_queue_peak = 0u64;
            let shift = w.shift(h);
            let mut criterion = 0.0f32;
            for it in 0..3 {
                let mut beam_out: [[Option<BeamStageOut>; 3]; 2] = Default::default();
                let mut corr_ready = Cycle::ZERO;
                let mut corr_arrivals: Vec<Cycle> = Vec::with_capacity(6);
                #[allow(clippy::needless_range_loop)] // blk selects block-specific tables
                for blk in 0..2 {
                    let (block, s) = if blk == 0 {
                        (&w.f_minus, -0.5 * shift)
                    } else {
                        (&w.f_plus, 0.5 * shift)
                    };
                    // Range stage: three cores, one window each; each core
                    // streams its output to all three beam cores.
                    let mut range_out: [Option<RangeStageOut>; 3] = Default::default();
                    let mut deliveries = [[Cycle::ZERO; 3]; 3]; // [beam][range]
                    for wi in 0..3 {
                        let rc = place.range[blk][wi];
                        let slot = core_slot(rc);
                        let out = range_stage(block, wi, s, it, &w.config, &mut counts[slot]);
                        let delta = counts[slot].since(&charged[slot]);
                        charged[slot] = counts[slot];
                        chip.compute(rc, &delta);
                        for (bi, row) in deliveries.iter_mut().enumerate() {
                            let bc = place.beam[blk][bi];
                            row[wi] = chip.send_reliable(rc, bc, range_msg_bytes);
                        }
                        range_out[wi] = Some(out);
                    }
                    let range_out: [RangeStageOut; 3] = range_out.map(|o| o.expect("range output"));

                    // Beam stage: each core waits for its three inputs.
                    for bi in 0..3 {
                        let bc = place.beam[blk][bi];
                        let slot = core_slot(bc);
                        let ready = deliveries[bi].iter().copied().max().unwrap_or(Cycle::ZERO);
                        chip.wait_flag(bc, ready);
                        let out = beam_stage(&range_out, bi, s, it, &w.config, &mut counts[slot]);
                        let delta = counts[slot].since(&charged[slot]);
                        charged[slot] = counts[slot];
                        chip.compute(bc, &delta);
                        let arr = chip.send_reliable(bc, place.corr, beam_msg_bytes);
                        corr_ready = corr_ready.max(arr);
                        corr_arrivals.push(arr);
                        beam_out[blk][bi] = Some(out);
                    }
                }

                // Correlation + summation once both halves have streamed in.
                let minus: [BeamStageOut; 3] =
                    std::array::from_fn(|i| beam_out[0][i].take().expect("beam output"));
                let plus: [BeamStageOut; 3] =
                    std::array::from_fn(|i| beam_out[1][i].take().expect("beam output"));
                let slot = core_slot(place.corr);
                // Queue depth seen by the correlator: messages already
                // delivered when it reaches the wait (backlog), and how
                // long it idles for the last one.
                let consume_at = chip.now(place.corr);
                let backlog = corr_arrivals.iter().filter(|&&a| a <= consume_at).count() as u64;
                corr_queue_peak = corr_queue_peak.max(backlog);
                corr_wait_cycles += corr_ready.saturating_sub(consume_at).0;
                chip.wait_flag(place.corr, corr_ready);
                criterion += correlate_partial(&minus, &plus, &mut counts[slot]);
                let delta = counts[slot].since(&charged[slot]);
                charged[slot] = counts[slot];
                chip.compute(place.corr, &delta);
            }
            chip.write_external(place.corr, GlobalAddr::external(0x10000 + 8 * h as u32), 8);
            let span = (chip.elapsed() - t0).0.max(1);
            let occupancy =
                |busy0: u64, busy1: u64, n: u64| (busy1 - busy0) as f64 / (n * span) as f64;
            chip.phase_metric(
                "range_occupancy",
                occupancy(range_busy0, stage_busy(&chip, &range_cores), 6),
            );
            chip.phase_metric(
                "beam_occupancy",
                occupancy(beam_busy0, stage_busy(&chip, &beam_cores), 6),
            );
            chip.phase_metric(
                "corr_occupancy",
                occupancy(corr_busy0, chip.busy(place.corr).0, 1),
            );
            chip.phase_metric("corr_wait_cycles", corr_wait_cycles as f64);
            chip.phase_metric("corr_queue_peak", corr_queue_peak as f64);

            // Health check at the hypothesis boundary: any core that
            // halted during this attempt invalidates its in-flight
            // results.
            let halted = faults.newly_halted(chip.elapsed());
            let dead: Vec<usize> = halted
                .iter()
                .map(|&c| c as usize)
                .filter(|c| cores.contains(c))
                .collect();
            // A spare that dies before it is ever drafted just leaves the
            // pool.
            spares.retain(|s| !halted.contains(&(*s as u32)));
            if dead.is_empty() {
                chip.phase_end();
                sweep.push((shift, criterion));
                break 'attempt;
            }
            chip.phase_metric("halted_cores", dead.len() as f64);
            chip.phase_end();
            for d in dead {
                let spare = spares.pop().expect("no spare core left to remap onto");
                place = place.remap(d, spare);
                faults.add_degraded_cores(1);
                // A replacement range core needs its image block re-staged
                // from SDRAM; beam and correlator stages carry no state
                // across hypotheses.
                for (blk, rcs) in place.range.iter().enumerate() {
                    if rcs.contains(&spare) {
                        let dma = chip.dma_start(
                            spare,
                            DmaDirection::ExternalToLocal,
                            GlobalAddr::external(blk as u32 * 288),
                            BANK_CHILD_A,
                            288,
                        );
                        chip.dma_wait(spare, dma);
                    }
                }
            }
            faults.add_recovery_cycles(chip.elapsed().saturating_sub(t0).raw());
            faults.add_recovery_energy((chip.energy().total_j() - attempt_e0).max(0.0));
        }
    }

    let best = best_shift(&sweep);
    AutofocusMpmdRun {
        record: chip.report("Autofocus / Epiphany, 13 cores @ 1 GHz (MPMD pipeline)", 13),
        sweep,
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autofocus_seq;

    #[test]
    fn pipeline_computes_the_same_criterion_as_sequential() {
        let w = AutofocusWorkload::small();
        let mpmd = run(&w, params(), Placement::neighbor());
        let seq = autofocus_seq::run(&w, autofocus_seq::params());
        assert_eq!(mpmd.sweep.len(), seq.sweep.len());
        for ((s1, v1), (s2, v2)) in mpmd.sweep.iter().zip(&seq.sweep) {
            assert_eq!(s1, s2);
            assert!(
                (v1 - v2).abs() <= 1e-3 * v2.abs().max(1.0),
                "criterion mismatch at shift {s1}: {v1} vs {v2}"
            );
        }
    }

    #[test]
    fn thirteen_cores_pipeline_much_faster_than_one() {
        let w = AutofocusWorkload::paper();
        let mpmd = run(&w, params(), Placement::neighbor());
        let seq = autofocus_seq::run(&w, autofocus_seq::params());
        let speedup = seq.record.elapsed.seconds() / mpmd.record.elapsed.seconds();
        assert!(
            speedup > 4.0,
            "pipeline should give a large speedup, got {speedup:.2}x"
        );
        assert!(
            speedup < 13.0,
            "speedup {speedup:.2}x cannot exceed core count"
        );
    }

    #[test]
    fn neighbor_mapping_beats_scattered_mapping_on_noc_traffic() {
        // Throughput is compute-bound (posted writes hide mesh latency
        // behind the pipeline), so the custom placement shows up in the
        // fabric, not the makespan: scattered producers push every
        // message across more hops — more byte-hop energy, and at most
        // noise-level time difference.
        let w = AutofocusWorkload::paper();
        let near = run(&w, params(), Placement::neighbor());
        let far = run(&w, params(), Placement::scattered());
        assert!(
            far.record.energy.mesh_j > 1.2 * near.record.energy.mesh_j,
            "scattered placement should burn more mesh energy: {:.3e} vs {:.3e} J",
            far.record.energy.mesh_j,
            near.record.energy.mesh_j
        );
        assert!(
            far.record.elapsed.seconds() >= 0.99 * near.record.elapsed.seconds(),
            "scattered placement should not be faster: {} vs {} ms",
            far.record.millis(),
            near.record.millis()
        );
    }

    #[test]
    fn placements_use_thirteen_distinct_cores() {
        assert_eq!(Placement::neighbor().cores().len(), 13);
        assert_eq!(Placement::scattered().cores().len(), 13);
    }

    #[test]
    fn streaming_avoids_offchip_traffic() {
        let w = AutofocusWorkload::paper();
        let r = run(&w, params(), Placement::neighbor());
        // Off-chip: initial DMA + one criterion write per hypothesis.
        assert_eq!(r.record.counters.get("ext_read"), 0);
        assert_eq!(r.record.counters.get("ext_write"), w.hypotheses as u64);
        // On-chip streaming is heavy.
        assert!(r.record.counters.get("remote_write") > 100);
    }

    #[test]
    fn a_halted_pipeline_core_is_remapped_onto_a_spare() {
        use faultsim::{FaultEvent, FaultPlan};
        let w = AutofocusWorkload::small();
        let clean = run(&w, params(), Placement::neighbor());
        // Core 4 is a block-0 range core in the neighbor placement, so
        // the remap must also re-stage its image block.
        let plan = FaultPlan::from_events(
            3,
            vec![FaultEvent::CoreHalt {
                core: 4,
                at: Cycle(2_000),
            }],
        );
        let faults = FaultState::from_plan(&plan);
        let r = run_faulted(
            &w,
            params(),
            Placement::neighbor(),
            desim::trace::Tracer::disabled(),
            faults.clone(),
        );
        assert_eq!(
            r.sweep, clean.sweep,
            "drain-and-restart must reproduce the fault-free sweep exactly"
        );
        assert_eq!(r.best, clean.best);
        let t = faults.totals();
        assert_eq!(t.degraded_cores, 1);
        assert_eq!(t.faults_injected, 1);
        assert!(t.recovery_cycles > 0, "the discarded attempt is paid for");
        assert_eq!(r.record.faults, t);
        assert!(r.record.elapsed.cycles.raw() > clean.record.elapsed.cycles.raw());
    }

    #[test]
    fn dropped_flags_are_retried_without_changing_the_sweep() {
        use faultsim::{FaultEvent, FaultPlan};
        let w = AutofocusWorkload::small();
        let clean = run(&w, params(), Placement::neighbor());
        let plan = FaultPlan::from_events(
            9,
            vec![
                FaultEvent::FlagDrop { at: Cycle(1_000) },
                FaultEvent::FlagDrop { at: Cycle(5_000) },
            ],
        );
        let faults = FaultState::from_plan(&plan);
        let r = run_faulted(
            &w,
            params(),
            Placement::neighbor(),
            desim::trace::Tracer::disabled(),
            faults.clone(),
        );
        assert_eq!(r.sweep, clean.sweep);
        let t = faults.totals();
        assert_eq!(t.faults_injected, 2);
        assert!(
            t.retries >= 2,
            "each dropped flag costs at least one re-send"
        );
        assert!(t.recovery_cycles > 0);
        assert_eq!(t.degraded_cores, 0);
    }

    #[test]
    fn fault_recovery_is_deterministic() {
        use faultsim::{FaultEvent, FaultPlan};
        let w = AutofocusWorkload::small();
        let plan = FaultPlan::from_events(
            21,
            vec![
                FaultEvent::FlagDrop { at: Cycle(5_000) },
                FaultEvent::CoreHalt {
                    core: 9,
                    at: Cycle(40_000),
                },
            ],
        );
        let go = || {
            run_faulted(
                &w,
                params(),
                Placement::neighbor(),
                desim::trace::Tracer::disabled(),
                FaultState::from_plan(&plan),
            )
        };
        let (a, b) = (go(), go());
        assert_eq!(a.record.elapsed.cycles, b.record.elapsed.cycles);
        assert_eq!(a.record.faults, b.record.faults);
        assert_eq!(a.sweep, b.sweep);
    }

    #[test]
    fn remap_replaces_every_occurrence_and_keeps_thirteen_cores() {
        let p = Placement::neighbor().remap(4, 12);
        assert!(!p.cores().contains(&4));
        assert!(p.cores().contains(&12));
        assert_eq!(p.cores().len(), 13);
        assert_eq!(
            p.range[0][1], 12,
            "core 4 was the block-0 window-1 range core"
        );
    }

    #[test]
    fn recovers_the_injected_path_error() {
        let w = AutofocusWorkload::paper();
        let r = run(&w, params(), Placement::neighbor());
        assert!(
            (r.best.0 - w.true_shift).abs() <= 0.15,
            "found {} expected {}",
            r.best.0,
            w.true_shift
        );
    }
}
