//! Autofocus criterion on a single Epiphany core (Table I row 5).
//!
//! The whole working set fits the core's local store, so — unlike FFBP
//! — memory latency never shows: the kernel runs at FPU speed, and the
//! FMA-friendly Neville chains execute in roughly half the instructions
//! the reference CPU needs. The paper measures 0.8x the i7 throughput
//! at 1/2.67 the clock.

use desim::{OpCounts, RunRecord};
use epiphany::{Chip, EpiphanyParams};
use memsim::GlobalAddr;
use sar_core::autofocus::{best_shift, focus_criterion};

use crate::layout::BANK_CHILD_A;
use crate::workloads::AutofocusWorkload;

/// Dual-issue pairing efficiency for this kernel: the hand-scheduled
/// interpolation loop pairs FPU ops with its loads/stores well.
pub const AUTOFOCUS_PAIRING: f64 = 0.9;

/// Epiphany parameters specialised to this kernel.
pub fn params() -> EpiphanyParams {
    EpiphanyParams {
        pairing_efficiency: AUTOFOCUS_PAIRING,
        ..EpiphanyParams::default()
    }
}

/// Outcome of the sequential Epiphany run.
pub struct AutofocusSeqRun {
    /// Machine record (one phase per hypothesis).
    pub record: RunRecord,
    /// `(shift, criterion)` per hypothesis.
    pub sweep: Vec<(f32, f32)>,
    /// The winning compensation.
    pub best: (f32, f32),
}

/// Execute the autofocus workload on one core of the Epiphany model.
pub fn run(w: &AutofocusWorkload, params: EpiphanyParams) -> AutofocusSeqRun {
    run_traced(w, params, desim::trace::Tracer::disabled())
}

/// [`run`] with an event timeline: the chip emits its spans into
/// `tracer`.
pub fn run_traced(
    w: &AutofocusWorkload,
    params: EpiphanyParams,
    tracer: desim::trace::Tracer,
) -> AutofocusSeqRun {
    let mut chip = Chip::from_params(params);
    chip.set_tracer(tracer);
    let core = 0usize;
    let mut counts = OpCounts::default();
    let mut charged = OpCounts::default();

    // DMA the two blocks from SDRAM into a local bank once.
    let d1 = chip.dma_start(
        core,
        epiphany::dma::DmaDirection::ExternalToLocal,
        GlobalAddr::external(0),
        BANK_CHILD_A,
        2 * 288,
    );
    chip.dma_wait(core, d1);

    let mut sweep = Vec::with_capacity(w.hypotheses);
    for h in 0..w.hypotheses {
        chip.phase_begin("hypothesis");
        let shift = w.shift(h);
        let v = focus_criterion(&w.f_minus, &w.f_plus, shift, &w.config, &mut counts);
        let delta = counts.since(&charged);
        charged = counts;
        chip.compute(core, &delta);
        chip.write_external(core, GlobalAddr::external(0x10000 + 8 * h as u32), 8);
        chip.phase_end();
        sweep.push((shift, v));
    }

    let best = best_shift(&sweep);
    AutofocusSeqRun {
        record: chip.report("Autofocus / Epiphany, 1 core @ 1 GHz (sequential)", 1),
        sweep,
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autofocus_ref;

    #[test]
    fn same_criterion_values_as_the_reference_machine() {
        let w = AutofocusWorkload::small();
        let a = run(&w, params());
        let b = autofocus_ref::run(&w, autofocus_ref::params());
        assert_eq!(a.sweep, b.sweep, "machines must compute identical numerics");
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn throughput_is_near_the_reference_cpu() {
        // Table I: Epiphany sequential reaches 0.8x the i7 throughput.
        // Accept a generous band around that shape.
        let w = AutofocusWorkload::paper();
        let seq = run(&w, params());
        let reference = autofocus_ref::run(&w, autofocus_ref::params());
        let ratio = reference.record.elapsed.seconds() / seq.record.elapsed.seconds();
        assert!(
            (0.4..1.2).contains(&ratio),
            "Epiphany-seq/i7 throughput ratio {ratio:.2} far from the paper's 0.8"
        );
    }

    #[test]
    fn no_external_reads_after_the_initial_dma() {
        let w = AutofocusWorkload::paper();
        let r = run(&w, params());
        assert_eq!(
            r.record.counters.get("ext_read"),
            0,
            "the kernel fits on chip; only the initial DMA touches SDRAM"
        );
        assert_eq!(r.record.counters.get("dma_bytes"), 576);
    }
}
