//! RDA on the full Epiphany mesh, SPMD, with an explicit tiled
//! corner-turn phase.
//!
//! Four phases over the [`RdaLayout`] regions, work units dealt
//! round-robin over the active cores:
//!
//! 1. `range` — each core DMA-fetches one raw pulse row (split across
//!    the two upper local banks when it exceeds one 8 KB bank),
//!    matched-filters it locally and posts the compressed row back to
//!    region B.
//! 2. `corner_turn` — the pulse-major matrix in B is transposed into
//!    region C tile by tile: a strided 2D DMA gathers a `TILE x TILE`
//!    block into bank A, the core transposes it locally, and a second
//!    strided 2D DMA scatters it bin-major from bank B. Nothing is
//!    computed beyond the transpose — this phase is pure eMesh/SDRAM
//!    pressure, the traffic wall the GPU-FFT and Epiphany-NoC papers
//!    identify as the throughput limiter for FFT-based SAR pipelines.
//! 3. `doppler` — one bin-major row (a full pulse history) DMA'd in,
//!    azimuth FFT, Doppler row posted to region B.
//! 4. `azimuth` — the Doppler row DMA'd back in, RCMC gathers fetched
//!    from deeper bins' rows with blocking reads, azimuth reference
//!    multiply + inverse FFT, focused row posted to region C.
//!
//! Every phase reads one region and writes a different one, so the
//! recovery story is the FFBP SPMD one verbatim: a core that halts is
//! detected at the end-of-phase health check, dropped, and the whole
//! phase redone on the survivors — bit-identical output, with the
//! redone work accounted as recovery cycles/energy.

use desim::{Cycle, OpCounts, RunRecord};
use epiphany::dma::DmaDirection;
use epiphany::{Chip, EpiphanyParams};
use faultsim::FaultState;
use sar_core::complex::c32;
use sar_core::image::ComplexImage;
use sar_core::rda::{
    azimuth_compress, azimuth_reference, doppler_spectrum, range_compress_row, rcmc_correct,
    rcmc_shift,
};
use sar_core::signal::{lfm_chirp, MatchedFilter};

use crate::layout::{RdaLayout, BANK_CHILD_A, BANK_CHILD_B, PIXEL_BYTES};
use crate::workloads::RdaWorkload;

/// Corner-turn tile edge, in elements. 32 x 32 c32 tiles are 8 KB —
/// exactly one local bank in, one out.
pub const TILE: usize = 32;

/// Knobs for the ablation benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct RdaSpmdOptions {
    /// Cores to use. `None` (the default) means every core the
    /// platform's mesh provides; `Some(n)` pins the count on a compact
    /// [`Chip::subgrid_cores`] subgrid.
    pub cores: Option<usize>,
}

/// Outcome of the SPMD RDA run.
pub struct RdaSpmdRun {
    /// Machine record (one phase per pipeline stage).
    pub record: RunRecord,
    /// The focused image.
    pub image: ComplexImage,
}

/// The local-transpose ledger for one `elems`-element tile (also used
/// by the mapping's program model, so the declaration cannot drift
/// from the driver).
pub fn transpose_ops(elems: u64) -> OpCounts {
    OpCounts {
        loads: 2 * elems,
        stores: 2 * elems,
        ialu: 2 * elems,
        ..OpCounts::default()
    }
}

/// Execute the RDA workload on the Epiphany model with `opts`.
pub fn run(w: &RdaWorkload, params: EpiphanyParams, opts: RdaSpmdOptions) -> RdaSpmdRun {
    run_traced(w, params, opts, desim::trace::Tracer::disabled())
}

/// [`run`] with an event timeline.
pub fn run_traced(
    w: &RdaWorkload,
    params: EpiphanyParams,
    opts: RdaSpmdOptions,
    tracer: desim::trace::Tracer,
) -> RdaSpmdRun {
    run_faulted(w, params, opts, tracer, FaultState::disabled())
}

/// [`run_traced`] under a fault schedule (checkpoint/restart at phase
/// granularity — see the module docs).
pub fn run_faulted(
    w: &RdaWorkload,
    params: EpiphanyParams,
    opts: RdaSpmdOptions,
    tracer: desim::trace::Tracer,
    faults: FaultState,
) -> RdaSpmdRun {
    let geom = &w.geom;
    let n = geom.num_pulses;
    let bins = geom.num_bins;
    let layout = RdaLayout::new(n as u32, bins as u32, w.raw.cols() as u32);
    let n_cores = opts.cores.unwrap_or_else(|| params.cores());
    let mut chip = if n_cores <= params.cores() {
        Chip::from_params(params)
    } else {
        Chip::with_cores(params, n_cores)
    };
    chip.set_tracer(tracer);
    chip.set_faults(faults.clone());
    let bank_bytes = u64::from(params.sram.bank_bytes);
    let mut active: Vec<usize> = chip.subgrid_cores(n_cores);

    let waveform = lfm_chirp(w.config.chirp);
    let mf = MatchedFilter::new(&waveform, w.raw.cols());
    let mut counts = OpCounts::default();
    let mut charged = OpCounts::default();

    // One checkpointed attempt loop per phase: on a halt, drop the
    // dead cores and redo the phase (its input region is intact).
    // Returns whether the attempt survived; the caller's closure runs
    // the phase body.
    macro_rules! checkpointed {
        ($name:literal, $body:expr) => {
            loop {
                let attempt_t0 = chip.elapsed();
                let attempt_e0 = if faults.is_enabled() {
                    chip.energy().total_j()
                } else {
                    0.0
                };
                chip.phase_begin($name);
                let mut last_write: Vec<Cycle> = vec![Cycle::ZERO; chip.cores()];
                #[allow(clippy::redundant_closure_call)]
                ($body)(&mut chip, &active, &mut last_write);
                for &core in &active {
                    chip.wait_flag(core, last_write[core]);
                }
                chip.barrier(&active);
                let dead: Vec<usize> = faults
                    .newly_halted(chip.elapsed())
                    .into_iter()
                    .map(|c| c as usize)
                    .filter(|c| active.contains(c))
                    .collect();
                if dead.is_empty() {
                    chip.phase_end();
                    break;
                }
                chip.phase_metric("halted_cores", dead.len() as f64);
                chip.phase_end();
                active.retain(|c| !dead.contains(c));
                assert!(
                    !active.is_empty(),
                    "every core halted; the SPMD mapping cannot recover"
                );
                faults.add_degraded_cores(dead.len() as u64);
                faults.add_recovery_cycles(chip.elapsed().saturating_sub(attempt_t0).raw());
                faults.add_recovery_energy((chip.energy().total_j() - attempt_e0).max(0.0));
            }
        };
    }

    // Phase 1: range compression, A -> B (pulse-major).
    let mut rc = ComplexImage::zeros(n, bins);
    checkpointed!(
        "range",
        |chip: &mut Chip, active: &[usize], last_write: &mut [Cycle]| {
            for k in 0..n {
                let core = active[k % active.len()];
                let row_bytes = layout.raw_row_bytes();
                let head = row_bytes.min(bank_bytes);
                let mut done = chip.dma_start(
                    core,
                    DmaDirection::ExternalToLocal,
                    layout.raw_addr(k as u32, 0),
                    BANK_CHILD_A,
                    head,
                );
                if row_bytes > head {
                    // Paper-scale raw rows (9,032 B) overflow one bank;
                    // the tail lands in the second upper bank.
                    done = done.max(chip.dma_start(
                        core,
                        DmaDirection::ExternalToLocal,
                        layout.raw_addr(k as u32, (head / PIXEL_BYTES) as u32),
                        BANK_CHILD_B,
                        row_bytes - head,
                    ));
                }
                chip.dma_wait(core, done);
                let row = range_compress_row(&mf, w.raw.row(k), bins, &mut counts);
                rc.row_mut(k).copy_from_slice(&row);
                let delta = counts.since(&charged);
                charged = counts;
                chip.compute(core, &delta);
                let arrival =
                    chip.write_external(core, layout.rc_addr(k as u32, 0), layout.rc_row_bytes());
                last_write[core] = last_write[core].max(arrival);
            }
        }
    );

    // Phase 2: tiled corner turn, B -> C. Pure transpose traffic:
    // strided 2D DMA in, local transpose, strided 2D DMA out.
    let tile_rows = n.div_ceil(TILE);
    let tile_cols = bins.div_ceil(TILE);
    checkpointed!(
        "corner_turn",
        |chip: &mut Chip, active: &[usize], _last_write: &mut [Cycle]| {
            let mut task = 0usize;
            for ti in 0..tile_rows {
                for tj in 0..tile_cols {
                    let core = active[task % active.len()];
                    task += 1;
                    let p0 = ti * TILE;
                    let b0 = tj * TILE;
                    let rows = TILE.min(n - p0);
                    let cols = TILE.min(bins - b0);
                    let done_in = chip.dma_start_2d(
                        core,
                        DmaDirection::ExternalToLocal,
                        layout.rc_addr(p0 as u32, b0 as u32),
                        BANK_CHILD_A,
                        rows as u32,
                        cols as u64 * PIXEL_BYTES,
                        layout.rc_row_bytes() as u32,
                    );
                    chip.dma_wait(core, done_in);
                    chip.compute(core, &transpose_ops((rows * cols) as u64));
                    let done_out = chip.dma_start_2d(
                        core,
                        DmaDirection::LocalToExternal,
                        layout.ct_addr(b0 as u32, p0 as u32),
                        BANK_CHILD_B,
                        cols as u32,
                        rows as u64 * PIXEL_BYTES,
                        layout.col_bytes() as u32,
                    );
                    chip.dma_wait(core, done_out);
                }
            }
            chip.phase_metric("tiles", (tile_rows * tile_cols) as f64);
        }
    );

    // Phase 3: azimuth FFT per bin, C -> B (bin-major).
    let mut rd = ComplexImage::zeros(bins, n);
    checkpointed!(
        "doppler",
        |chip: &mut Chip, active: &[usize], last_write: &mut [Cycle]| {
            let mut col = vec![c32::ZERO; n];
            for i in 0..bins {
                let core = active[i % active.len()];
                let done = chip.dma_start(
                    core,
                    DmaDirection::ExternalToLocal,
                    layout.ct_addr(i as u32, 0),
                    BANK_CHILD_A,
                    layout.col_bytes(),
                );
                chip.dma_wait(core, done);
                for (k, c) in col.iter_mut().enumerate() {
                    *c = rc.at(k, i);
                }
                let spectrum = doppler_spectrum(&col, &mut counts);
                rd.row_mut(i).copy_from_slice(&spectrum);
                let delta = counts.since(&charged);
                charged = counts;
                chip.compute(core, &delta);
                let arrival =
                    chip.write_external(core, layout.rd_addr(i as u32, 0), layout.col_bytes());
                last_write[core] = last_write[core].max(arrival);
            }
        }
    );

    // Phase 4: RCMC + azimuth compression per bin, B -> C (bin-major).
    let mut image = ComplexImage::zeros(n, bins);
    checkpointed!(
        "azimuth",
        |chip: &mut Chip, active: &[usize], last_write: &mut [Cycle]| {
            let mut gathers: Vec<memsim::GlobalAddr> = Vec::with_capacity(n);
            for i in 0..bins {
                let core = active[i % active.len()];
                let done = chip.dma_start(
                    core,
                    DmaDirection::ExternalToLocal,
                    layout.rd_addr(i as u32, 0),
                    BANK_CHILD_A,
                    layout.col_bytes(),
                );
                chip.dma_wait(core, done);
                gathers.clear();
                if w.config.rcmc {
                    for m in 0..n {
                        let d = rcmc_shift(geom, i, m);
                        if d > 0 && i + d < bins {
                            gathers.push(layout.rd_addr((i + d) as u32, m as u32));
                        }
                    }
                }
                chip.read_external_run(core, &gathers, 8);
                let corrected = rcmc_correct(&rd, geom, i, w.config.rcmc, &mut counts);
                let href = azimuth_reference(geom, i, &mut counts);
                let line = azimuth_compress(&corrected, &href, &mut counts);
                for k in 0..n {
                    *image.at_mut(k, i) = line[(k + n / 2) % n];
                }
                let delta = counts.since(&charged);
                charged = counts;
                chip.compute(core, &delta);
                let arrival =
                    chip.write_external(core, layout.ct_addr(i as u32, 0), layout.col_bytes());
                last_write[core] = last_write[core].max(arrival);
            }
        }
    );

    RdaSpmdRun {
        record: chip.report(
            &format!("RDA / Epiphany, {n_cores} cores @ 1 GHz (SPMD)"),
            n_cores,
        ),
        image,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rda_seq;
    use sar_core::rda::rda;

    #[test]
    fn image_matches_the_plain_algorithm_and_the_sequential_port() {
        let w = RdaWorkload::small();
        let spmd = run(&w, EpiphanyParams::default(), RdaSpmdOptions::default());
        let plain = rda(&w.raw, &w.geom, &w.config);
        let seq = rda_seq::run(&w, EpiphanyParams::default());
        assert_eq!(spmd.image.as_slice(), plain.image.as_slice());
        assert_eq!(spmd.image.as_slice(), seq.image.as_slice());
    }

    #[test]
    fn e64_forms_the_same_image_and_runs_no_slower() {
        let w = RdaWorkload::small();
        let e16 = run(&w, EpiphanyParams::default(), RdaSpmdOptions::default());
        let e64 = run(&w, EpiphanyParams::e64(), RdaSpmdOptions::default());
        assert!(
            e64.record.label.contains("64 cores"),
            "{}",
            e64.record.label
        );
        assert_eq!(
            e64.image.as_slice(),
            e16.image.as_slice(),
            "the formed image is independent of the mesh"
        );
        assert!(e64.record.elapsed.seconds() <= e16.record.elapsed.seconds());
    }

    #[test]
    fn parallel_beats_sequential() {
        let w = RdaWorkload::small();
        let par = run(&w, EpiphanyParams::default(), RdaSpmdOptions::default());
        let seq = rda_seq::run(&w, EpiphanyParams::default());
        let speedup = seq.record.elapsed.seconds() / par.record.elapsed.seconds();
        assert!(
            speedup > 4.0,
            "16-core SPMD should be far faster than 1 core, got {speedup:.2}x"
        );
        assert!(speedup < 100.0, "speedup {speedup:.2}x is absurd");
    }

    #[test]
    fn corner_turn_phase_loads_the_mesh() {
        let w = RdaWorkload::small();
        let r = run(&w, EpiphanyParams::default(), RdaSpmdOptions::default());
        assert_eq!(r.record.phases.len(), 4);
        let ct = &r.record.phases[1];
        assert_eq!(ct.name, "corner_turn");
        // The transpose is pure traffic: every tile crosses the xMesh
        // twice (in and out), so the phase must show byte-hops.
        assert!(
            ct.mesh.xmesh_byte_hops > 0,
            "corner turn must load the off-chip mesh"
        );
        assert!(ct.mesh.total_byte_hops() > 0);
        assert_eq!(
            ct.metrics.get("tiles").copied(),
            Some((w.geom.num_pulses.div_ceil(TILE) * w.geom.num_bins.div_ceil(TILE)) as f64)
        );
        // And the run-wide heatmap spreads the load over several links.
        let heat = r.record.mesh_heatmap.as_ref().expect("epiphany heatmap");
        assert!(heat.total_byte_hops() > 0);
        let loaded = heat.links.iter().filter(|l| l.byte_hops > 0).count();
        assert!(loaded > 4, "only {loaded} mesh links carried traffic");
    }

    #[test]
    fn a_16_core_subgrid_of_the_e64_matches_the_e16_image() {
        let w = RdaWorkload::small();
        let e16 = run(&w, EpiphanyParams::default(), RdaSpmdOptions::default());
        let sub = run(
            &w,
            EpiphanyParams::e64(),
            RdaSpmdOptions { cores: Some(16) },
        );
        assert_eq!(sub.image.as_slice(), e16.image.as_slice());
        assert!(sub.record.label.contains("16 cores"));
    }

    #[test]
    fn fewer_cores_run_longer() {
        let w = RdaWorkload::small();
        let four = run(
            &w,
            EpiphanyParams::default(),
            RdaSpmdOptions { cores: Some(4) },
        );
        let sixteen = run(&w, EpiphanyParams::default(), RdaSpmdOptions::default());
        assert!(four.record.elapsed.seconds() > sixteen.record.elapsed.seconds());
    }

    #[test]
    fn core_halt_recovery_reproduces_the_image_bit_for_bit() {
        use faultsim::{FaultEvent, FaultPlan};
        let w = RdaWorkload::small();
        let clean = run(&w, EpiphanyParams::default(), RdaSpmdOptions::default());
        let plan = FaultPlan::from_events(
            19,
            vec![FaultEvent::CoreHalt {
                core: 6,
                at: Cycle(2_000),
            }],
        );
        let faults = FaultState::from_plan(&plan);
        let r = run_faulted(
            &w,
            EpiphanyParams::default(),
            RdaSpmdOptions::default(),
            desim::trace::Tracer::disabled(),
            faults.clone(),
        );
        assert_eq!(
            r.image.as_slice(),
            clean.image.as_slice(),
            "checkpoint/restart must reproduce the fault-free image bit-for-bit"
        );
        let totals = faults.totals();
        assert_eq!(totals.degraded_cores, 1);
        assert!(totals.recovery_cycles > 0);
        assert_eq!(r.record.faults, totals);
        assert!(r.record.elapsed.cycles.raw() > clean.record.elapsed.cycles.raw());
    }

    #[test]
    fn core_halt_recovery_is_deterministic() {
        use faultsim::{FaultEvent, FaultPlan};
        let w = RdaWorkload::small();
        let plan = FaultPlan::from_events(
            23,
            vec![FaultEvent::CoreHalt {
                core: 2,
                at: Cycle(10_000),
            }],
        );
        let go = || {
            run_faulted(
                &w,
                EpiphanyParams::default(),
                RdaSpmdOptions::default(),
                desim::trace::Tracer::disabled(),
                FaultState::from_plan(&plan),
            )
        };
        let (a, b) = (go(), go());
        assert_eq!(a.record.elapsed.cycles, b.record.elapsed.cycles);
        assert_eq!(a.record.faults, b.record.faults);
        assert_eq!(a.image.as_slice(), b.image.as_slice());
    }
}
