//! FFBP on a single Epiphany core (Table I row 2).
//!
//! The naive port: image data lives in off-chip SDRAM, and every
//! contributing element is fetched with a *blocking* read over the
//! eLink (the Epiphany has no caches to hide the latency — the paper's
//! explanation for this configuration being ~3x slower than the i7
//! despite executing fewer instructions). Result rows are posted back
//! with non-stalling writes.

use desim::{OpCounts, RunRecord};
use epiphany::{Chip, EpiphanyParams};
use sar_core::ffbp::grid::Subaperture;
use sar_core::ffbp::interp::nearest_indices;
use sar_core::ffbp::merge::combine_sample_with_lookup;
use sar_core::ffbp::pipeline::stage0;
use sar_core::image::ComplexImage;

use crate::layout::ExternalLayout;
use crate::workloads::FfbpWorkload;

/// Outcome of the sequential Epiphany run.
pub struct FfbpSeqRun {
    /// Machine record (one phase per merge iteration).
    pub record: RunRecord,
    /// The formed image.
    pub image: ComplexImage,
}

/// Execute the FFBP workload on one core of the Epiphany model.
pub fn run(w: &FfbpWorkload, params: EpiphanyParams) -> FfbpSeqRun {
    run_traced(w, params, desim::trace::Tracer::disabled())
}

/// [`run`] with an event timeline: the chip emits its spans into
/// `tracer`.
pub fn run_traced(
    w: &FfbpWorkload,
    params: EpiphanyParams,
    tracer: desim::trace::Tracer,
) -> FfbpSeqRun {
    let geom = &w.geom;
    let layout = ExternalLayout::new(geom.num_pulses as u32, geom.num_bins as u32);
    let mut chip = Chip::from_params(params);
    chip.set_tracer(tracer);
    let core = 0usize;
    let mut counts = OpCounts::default();
    let mut charged = OpCounts::default();

    let mut stage: Vec<Subaperture> = stage0(&w.data, geom);
    let mut stage_idx = 0u32;
    // Each output row issues its blocking element fetches back to
    // back with nothing between them — buffered per row so the chip
    // can absorb the span in closed form (`read_external_run`).
    let mut row_reads = Vec::with_capacity(2 * geom.num_bins);

    while stage.len() > 1 {
        chip.phase_begin("merge");
        let child_beams = stage[0].grid.n_beams as u32;
        let out_grid = stage[0].grid.refined();
        let mut next = Vec::with_capacity(stage.len() / 2);
        for (pair_idx, pair) in stage.chunks(2).enumerate() {
            let (a, b) = (&pair[0], &pair[1]);
            let l = b.center_y - a.center_y;
            let mut out = Subaperture::zeros(
                (a.center_y + b.center_y) / 2.0,
                a.length + b.length,
                out_grid,
                geom.num_bins,
            );
            let beam_base_a = 2 * pair_idx as u32 * child_beams;
            let beam_base_b = beam_base_a + child_beams;
            let out_beam_base = pair_idx as u32 * out_grid.n_beams as u32;
            for j in 0..out_grid.n_beams {
                let theta = out_grid.beam_theta(j);
                row_reads.clear();
                for i in 0..geom.num_bins {
                    let r = geom.bin_range(i);
                    let (v, look) = combine_sample_with_lookup(
                        a,
                        b,
                        geom,
                        r,
                        theta,
                        l,
                        w.config.interp,
                        w.config.phase_correct,
                        &mut counts,
                    );
                    // Both contributing elements are blocking external
                    // reads (no cache, no prefetch in the naive port).
                    if let Some((bin, beam)) = nearest_indices(a, geom, look.r1, look.theta1) {
                        row_reads.push(layout.addr(
                            stage_idx,
                            beam_base_a + beam as u32,
                            bin as u32,
                        ));
                    }
                    if let Some((bin, beam)) = nearest_indices(b, geom, look.r2, look.theta2) {
                        row_reads.push(layout.addr(
                            stage_idx,
                            beam_base_b + beam as u32,
                            bin as u32,
                        ));
                    }
                    *out.data.at_mut(j, i) = v;
                }
                chip.read_external_run(core, &row_reads, 8);
                // Arithmetic for the row, then a posted row write-back.
                let delta = counts.since(&charged);
                charged = counts;
                chip.compute(core, &delta);
                let row_addr = layout.addr(stage_idx + 1, out_beam_base + j as u32, 0);
                chip.write_external(core, row_addr, layout.beam_bytes());
            }
            next.push(out);
        }
        chip.phase_end();
        stage = next;
        stage_idx += 1;
    }

    let full = stage.into_iter().next().expect("non-empty stage");
    FfbpSeqRun {
        record: chip.report("FFBP / Epiphany, 1 core @ 1 GHz (sequential)", 1),
        image: full.data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffbp_ref;
    use refcpu::RefCpuParams;
    use sar_core::ffbp::ffbp;

    #[test]
    fn image_matches_the_plain_algorithm() {
        let w = FfbpWorkload::small();
        let machine = run(&w, EpiphanyParams::default());
        let plain = ffbp(&w.data, &w.geom, &w.config);
        assert_eq!(machine.image.as_slice(), plain.image.as_slice());
    }

    #[test]
    fn slower_than_the_reference_cpu() {
        // The paper's headline shape for this row: 0.36x the i7 —
        // blocking uncached SDRAM reads dominate.
        let w = FfbpWorkload::small();
        let seq = run(&w, EpiphanyParams::default());
        let reference = ffbp_ref::run(&w, RefCpuParams::default());
        let speedup = reference.record.elapsed.seconds() / seq.record.elapsed.seconds();
        assert!(
            speedup < 0.9,
            "sequential Epiphany should lose to the i7 model, got speedup {speedup:.2}"
        );
    }

    #[test]
    fn external_reads_dominate_the_counters() {
        let w = FfbpWorkload::small();
        let r = run(&w, EpiphanyParams::default());
        let reads = r.record.counters.get("ext_read");
        // Two reads per output sample, minus out-of-swath skips.
        let samples = w.pixels() * u64::from(w.geom.merge_iterations());
        assert!(reads > samples, "reads {reads} vs samples {samples}");
        assert!(reads <= 2 * samples);
    }
}
