//! Autofocus criterion on the reference CPU model (Table I row 4).
//!
//! The working set (two 6x6 blocks plus small intermediates) fits in
//! the L1 cache, so this configuration is purely compute-bound — the
//! paper notes its throughput is comparable to a single Epiphany core
//! because the i7's clock advantage is offset by executing almost twice
//! the instructions (no FMA) on a latency-bound dependence chain.

use desim::{OpCounts, RunRecord};
use refcpu::{RefCpu, RefCpuParams};
use sar_core::autofocus::{best_shift, focus_criterion};

use crate::workloads::AutofocusWorkload;

/// Sustained IPC for the Neville dependence chains of this kernel:
/// each interpolation level waits on the previous one, so the
/// out-of-order window cannot fill its issue slots (the FFBP geometry
/// kernel, by contrast, has two independent chains and sustains the
/// [`RefCpuParams::default`] IPC).
pub const AUTOFOCUS_SUSTAINED_IPC: f64 = 0.8;

/// Reference-model parameters specialised to this kernel.
pub fn params() -> RefCpuParams {
    RefCpuParams {
        sustained_ipc: AUTOFOCUS_SUSTAINED_IPC,
        ..RefCpuParams::default()
    }
}

/// Outcome of the reference run.
pub struct AutofocusRefRun {
    /// Machine record (one phase per hypothesis).
    pub record: RunRecord,
    /// `(shift, criterion)` per hypothesis.
    pub sweep: Vec<(f32, f32)>,
    /// The winning compensation.
    pub best: (f32, f32),
}

/// Execute the autofocus workload on the reference CPU model.
pub fn run(w: &AutofocusWorkload, params: RefCpuParams) -> AutofocusRefRun {
    let mut cpu = RefCpu::new(params);
    let mut counts = OpCounts::default();
    let mut charged = OpCounts::default();

    // The two blocks stream in once (cold reads), then live in L1.
    cpu.mem_read(0x1000, 288);
    cpu.mem_read(0x2000, 288);

    let mut sweep = Vec::with_capacity(w.hypotheses);
    for h in 0..w.hypotheses {
        cpu.phase_begin("hypothesis");
        let shift = w.shift(h);
        let v = focus_criterion(&w.f_minus, &w.f_plus, shift, &w.config, &mut counts);
        let delta = counts.since(&charged);
        charged = counts;
        cpu.compute(&delta);
        // Criterion result written out.
        cpu.mem_write(0x3000 + 8 * h as u64, 8);
        cpu.phase_end();
        sweep.push((shift, v));
    }

    let best = best_shift(&sweep);
    AutofocusRefRun {
        record: cpu.report("Autofocus / Intel i7 model, 1 core @ 2.67 GHz"),
        sweep,
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_the_injected_path_error() {
        let w = AutofocusWorkload::paper();
        let r = run(&w, params());
        assert!(
            (r.best.0 - w.true_shift).abs() <= 0.15,
            "found {} expected {}",
            r.best.0,
            w.true_shift
        );
    }

    #[test]
    fn compute_bound_not_memory_bound() {
        let w = AutofocusWorkload::paper();
        let r = run(&w, params());
        let stalls = r.record.metric("mem_stall_fraction").unwrap();
        assert!(
            stalls < 0.05,
            "autofocus must be compute bound, stalls {stalls}"
        );
    }

    #[test]
    fn throughput_in_table_one_ballpark() {
        // Table I: 21,600 criterion pixels/second on the i7. The model
        // should land within ~2x of that — it is an architecture model,
        // not a fit.
        let w = AutofocusWorkload::paper();
        let r = run(&w, params());
        let px_per_s = w.pixels() as f64 / r.record.elapsed.seconds();
        assert!(
            (8_000.0..80_000.0).contains(&px_per_s),
            "throughput {px_per_s:.0} px/s implausibly far from Table I"
        );
    }

    #[test]
    fn sweep_length_matches_hypotheses() {
        let w = AutofocusWorkload::small();
        let r = run(&w, params());
        assert_eq!(r.sweep.len(), w.hypotheses);
    }
}
