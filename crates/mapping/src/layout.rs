//! Memory layout: external SDRAM buffers and local-store bank use.
//!
//! FFBP ping-pongs two full-image buffers in the 32 MB external
//! window (each stage reads the previous stage's buffer and writes its
//! own). Per core, the paper's implementation keeps code, stack and
//! working variables in the two lower local banks and prefetches
//! contributing subaperture data into the two *upper* 8 KB banks —
//! one child beam per bank (a 1001-sample beam is 8,008 bytes).

use memsim::GlobalAddr;
use sar_core::complex::c32;

/// Bytes per complex pixel.
pub const PIXEL_BYTES: u64 = std::mem::size_of::<c32>() as u64;

/// Local bank receiving child-A prefetches.
pub const BANK_CHILD_A: usize = 2;
/// Local bank receiving child-B prefetches.
pub const BANK_CHILD_B: usize = 3;

/// The two ping-pong image buffers in external memory.
#[derive(Debug, Clone, Copy)]
pub struct ExternalLayout {
    /// Range bins per beam (row length).
    pub num_bins: u32,
    /// Base offset of buffer 0 in the external window.
    pub base0: u32,
    /// Base offset of buffer 1.
    pub base1: u32,
}

impl ExternalLayout {
    /// Layout for an image of `num_beams_total x num_bins` pixels
    /// (the total beam count across all subapertures of a stage is
    /// constant, so both buffers are image-sized).
    pub fn new(num_beams_total: u32, num_bins: u32) -> ExternalLayout {
        let image_bytes = num_beams_total as u64 * num_bins as u64 * PIXEL_BYTES;
        let half = memsim::address::EXTERNAL_SIZE / 2;
        assert!(
            image_bytes <= half as u64,
            "image of {image_bytes} B does not fit a {half} B ping-pong buffer"
        );
        ExternalLayout {
            num_bins,
            base0: 0,
            base1: half,
        }
    }

    /// Base of the buffer holding stage `stage` data (stage 0 = raw
    /// pulses in buffer 0; each merge flips buffers).
    pub fn stage_base(&self, stage: u32) -> u32 {
        if stage.is_multiple_of(2) {
            self.base0
        } else {
            self.base1
        }
    }

    /// External address of `(global_beam, bin)` in the stage buffer,
    /// where `global_beam` numbers beams across all subapertures of the
    /// stage (subaperture-major).
    pub fn addr(&self, stage: u32, global_beam: u32, bin: u32) -> GlobalAddr {
        debug_assert!(bin < self.num_bins);
        let off = self.stage_base(stage) as u64
            + (global_beam as u64 * self.num_bins as u64 + bin as u64) * PIXEL_BYTES;
        GlobalAddr::external(off as u32)
    }

    /// Bytes of one beam (one row).
    pub fn beam_bytes(&self) -> u64 {
        self.num_bins as u64 * PIXEL_BYTES
    }
}

/// SDRAM layout for the RDA pipeline: three disjoint regions.
///
/// * **raw** — the uncompressed echo matrix, `pulses x echo_len`,
///   pulse-major (read-only input),
/// * **B** — a `pulses x bins`-sized working buffer: holds the
///   range-compressed matrix pulse-major, later the range–Doppler
///   matrix bin-major,
/// * **C** — a second working buffer of the same size: the corner-
///   turned (transposed) matrix, later the focused image bin-major.
///
/// Every phase reads one region and writes a *different* one, so a
/// phase is idempotent and can be redone after a core halt
/// (checkpoint/restart, like the FFBP SPMD mapping).
#[derive(Debug, Clone, Copy)]
pub struct RdaLayout {
    /// Pulse count (also the azimuth FFT length).
    pub pulses: u32,
    /// Range bins per pulse after compression.
    pub bins: u32,
    /// Fast-time samples per raw pulse (`bins + chirp samples`).
    pub echo_len: u32,
    base_raw: u32,
    base_b: u32,
    base_c: u32,
}

impl RdaLayout {
    /// Layout for a `pulses x bins` image formed from `pulses x
    /// echo_len` raw echoes.
    pub fn new(pulses: u32, bins: u32, echo_len: u32) -> RdaLayout {
        assert!(echo_len >= bins, "raw rows carry at least num_bins samples");
        let raw_bytes = pulses as u64 * echo_len as u64 * PIXEL_BYTES;
        let image_bytes = pulses as u64 * bins as u64 * PIXEL_BYTES;
        let total = raw_bytes + 2 * image_bytes;
        assert!(
            total <= memsim::address::EXTERNAL_SIZE as u64,
            "RDA working set of {total} B does not fit the external window"
        );
        RdaLayout {
            pulses,
            bins,
            echo_len,
            base_raw: 0,
            base_b: raw_bytes as u32,
            base_c: (raw_bytes + image_bytes) as u32,
        }
    }

    /// External address of raw sample `(pulse, sample)`.
    pub fn raw_addr(&self, pulse: u32, sample: u32) -> GlobalAddr {
        debug_assert!(pulse < self.pulses && sample < self.echo_len);
        let off = self.base_raw as u64
            + (pulse as u64 * self.echo_len as u64 + sample as u64) * PIXEL_BYTES;
        GlobalAddr::external(off as u32)
    }

    /// Address of `(pulse, bin)` in region B viewed pulse-major (the
    /// range-compressed matrix).
    pub fn rc_addr(&self, pulse: u32, bin: u32) -> GlobalAddr {
        debug_assert!(pulse < self.pulses && bin < self.bins);
        let off = self.base_b as u64 + (pulse as u64 * self.bins as u64 + bin as u64) * PIXEL_BYTES;
        GlobalAddr::external(off as u32)
    }

    /// Address of `(bin, doppler)` in region B viewed bin-major (the
    /// range–Doppler matrix; same bytes as [`Self::rc_addr`], different
    /// lifetime).
    pub fn rd_addr(&self, bin: u32, m: u32) -> GlobalAddr {
        debug_assert!(bin < self.bins && m < self.pulses);
        let off = self.base_b as u64 + (bin as u64 * self.pulses as u64 + m as u64) * PIXEL_BYTES;
        GlobalAddr::external(off as u32)
    }

    /// Address of `(bin, pulse)` in region C viewed bin-major (the
    /// corner-turned matrix, later the focused image).
    pub fn ct_addr(&self, bin: u32, pulse: u32) -> GlobalAddr {
        debug_assert!(bin < self.bins && pulse < self.pulses);
        let off =
            self.base_c as u64 + (bin as u64 * self.pulses as u64 + pulse as u64) * PIXEL_BYTES;
        GlobalAddr::external(off as u32)
    }

    /// Bytes of one raw pulse row.
    pub fn raw_row_bytes(&self) -> u64 {
        self.echo_len as u64 * PIXEL_BYTES
    }

    /// Bytes of one range-compressed row (pulse-major region B).
    pub fn rc_row_bytes(&self) -> u64 {
        self.bins as u64 * PIXEL_BYTES
    }

    /// Bytes of one bin-major row (one full pulse history).
    pub fn col_bytes(&self) -> u64 {
        self.pulses as u64 * PIXEL_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_image_fits_ping_pong() {
        let l = ExternalLayout::new(1024, 1001);
        assert_eq!(l.beam_bytes(), 8008);
        assert_ne!(l.stage_base(0), l.stage_base(1));
        assert_eq!(l.stage_base(0), l.stage_base(2));
        let a = l.addr(0, 0, 0);
        let b = l.addr(0, 1, 0);
        assert_eq!((b.0 - a.0) as u64, l.beam_bytes());
        assert!(l.addr(1, 1023, 1000).is_external());
    }

    #[test]
    fn beam_fits_one_bank() {
        let l = ExternalLayout::new(1024, 1001);
        assert!(l.beam_bytes() <= 8 * 1024, "a beam must fit one 8 KB bank");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_image_rejected() {
        let _ = ExternalLayout::new(4096, 4001);
    }

    #[test]
    fn rda_regions_are_disjoint_and_fit_at_paper_scale() {
        let l = RdaLayout::new(1024, 1001, 1129);
        assert_eq!(l.raw_row_bytes(), 9032);
        assert_eq!(l.rc_row_bytes(), 8008);
        assert_eq!(l.col_bytes(), 8192);
        // Region boundaries: last raw byte < first B byte < first C byte.
        let raw_end = l.raw_addr(1023, 1128).0 as u64 + PIXEL_BYTES;
        let b_start = l.rc_addr(0, 0).0 as u64;
        assert!(raw_end <= b_start);
        let b_end = l.rd_addr(1000, 1023).0 as u64 + PIXEL_BYTES;
        let c_start = l.ct_addr(0, 0).0 as u64;
        assert!(b_end <= c_start);
        assert!(l.ct_addr(1000, 1023).is_external());
        // B's two views cover the same bytes.
        assert_eq!(l.rc_addr(0, 0), l.rd_addr(0, 0));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_rda_working_set_rejected() {
        let _ = RdaLayout::new(4096, 4001, 4129);
    }
}
