//! Memory layout: external SDRAM buffers and local-store bank use.
//!
//! FFBP ping-pongs two full-image buffers in the 32 MB external
//! window (each stage reads the previous stage's buffer and writes its
//! own). Per core, the paper's implementation keeps code, stack and
//! working variables in the two lower local banks and prefetches
//! contributing subaperture data into the two *upper* 8 KB banks —
//! one child beam per bank (a 1001-sample beam is 8,008 bytes).

use memsim::GlobalAddr;
use sar_core::complex::c32;

/// Bytes per complex pixel.
pub const PIXEL_BYTES: u64 = std::mem::size_of::<c32>() as u64;

/// Local bank receiving child-A prefetches.
pub const BANK_CHILD_A: usize = 2;
/// Local bank receiving child-B prefetches.
pub const BANK_CHILD_B: usize = 3;

/// The two ping-pong image buffers in external memory.
#[derive(Debug, Clone, Copy)]
pub struct ExternalLayout {
    /// Range bins per beam (row length).
    pub num_bins: u32,
    /// Base offset of buffer 0 in the external window.
    pub base0: u32,
    /// Base offset of buffer 1.
    pub base1: u32,
}

impl ExternalLayout {
    /// Layout for an image of `num_beams_total x num_bins` pixels
    /// (the total beam count across all subapertures of a stage is
    /// constant, so both buffers are image-sized).
    pub fn new(num_beams_total: u32, num_bins: u32) -> ExternalLayout {
        let image_bytes = num_beams_total as u64 * num_bins as u64 * PIXEL_BYTES;
        let half = memsim::address::EXTERNAL_SIZE / 2;
        assert!(
            image_bytes <= half as u64,
            "image of {image_bytes} B does not fit a {half} B ping-pong buffer"
        );
        ExternalLayout {
            num_bins,
            base0: 0,
            base1: half,
        }
    }

    /// Base of the buffer holding stage `stage` data (stage 0 = raw
    /// pulses in buffer 0; each merge flips buffers).
    pub fn stage_base(&self, stage: u32) -> u32 {
        if stage.is_multiple_of(2) {
            self.base0
        } else {
            self.base1
        }
    }

    /// External address of `(global_beam, bin)` in the stage buffer,
    /// where `global_beam` numbers beams across all subapertures of the
    /// stage (subaperture-major).
    pub fn addr(&self, stage: u32, global_beam: u32, bin: u32) -> GlobalAddr {
        debug_assert!(bin < self.num_bins);
        let off = self.stage_base(stage) as u64
            + (global_beam as u64 * self.num_bins as u64 + bin as u64) * PIXEL_BYTES;
        GlobalAddr::external(off as u32)
    }

    /// Bytes of one beam (one row).
    pub fn beam_bytes(&self) -> u64 {
        self.num_bins as u64 * PIXEL_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_image_fits_ping_pong() {
        let l = ExternalLayout::new(1024, 1001);
        assert_eq!(l.beam_bytes(), 8008);
        assert_ne!(l.stage_base(0), l.stage_base(1));
        assert_eq!(l.stage_base(0), l.stage_base(2));
        let a = l.addr(0, 0, 0);
        let b = l.addr(0, 1, 0);
        assert_eq!((b.0 - a.0) as u64, l.beam_bytes());
        assert!(l.addr(1, 1023, 1000).is_external());
    }

    #[test]
    fn beam_fits_one_bank() {
        let l = ExternalLayout::new(1024, 1001);
        assert!(l.beam_bytes() <= 8 * 1024, "a beam must fit one 8 KB bank");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_image_rejected() {
        let _ = ExternalLayout::new(4096, 4001);
    }
}
