//! [`sim_harness::Mapping`] implementations for every driver in this
//! crate (plus the host-parallel FFBP from `sar-core`), and the
//! registry the unified runner resolves `--mapping` names against.
//!
//! Kernel-specialised parameter overrides (the autofocus IPC and
//! pairing figures) are applied here, on top of whatever parameters the
//! platform supplies — so a record produced through the harness prices
//! exactly like one from the direct driver call.

use desim::trace::Tracer;
use sim_harness::{
    HarnessError, Mapping, MappingRun, Platform, PlatformKind, ProgramModel, RunContext, Workload,
};

use crate::autofocus_mpmd::Placement;
use crate::autofocus_ref::AUTOFOCUS_SUSTAINED_IPC;
use crate::autofocus_seq::AUTOFOCUS_PAIRING;
use crate::{
    autofocus_mpmd, autofocus_net, autofocus_ref, autofocus_seq, ffbp_ref, ffbp_seq, ffbp_spmd,
    rda_seq, rda_spmd,
};

fn kernel_mismatch(mapping: &dyn Mapping, workload: &Workload) -> HarnessError {
    HarnessError::KernelMismatch {
        mapping: mapping.name().to_string(),
        workload: workload.kernel().to_string(),
    }
}

fn unsupported(mapping: &dyn Mapping, platform: &dyn Platform) -> HarnessError {
    HarnessError::UnsupportedPlatform {
        mapping: mapping.name().to_string(),
        platform: platform.label().to_string(),
    }
}

/// The mesh a program model should declare for `platform`: the chip's
/// real geometry for the Epiphany family, the canonical 4x4 otherwise
/// (non-Epiphany platforms never reach an Epiphany model's analyzer
/// checks — `supports` gates them first).
fn platform_mesh(platform: &dyn Platform) -> (u16, u16) {
    platform
        .epiphany_params()
        .map_or((4, 4), |p| (p.mesh_cols, p.mesh_rows))
}

/// FFBP on one reference-CPU core (Table I row 1).
pub struct FfbpRefMapping;

impl Mapping for FfbpRefMapping {
    fn name(&self) -> &'static str {
        "ffbp_ref"
    }
    fn kernel(&self) -> &'static str {
        "ffbp"
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        kind == PlatformKind::RefCpu
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        _tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .ffbp()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let params = platform
            .refcpu_params()
            .ok_or_else(|| unsupported(self, platform))?;
        let r = ffbp_ref::run(w, params);
        Ok(MappingRun {
            record: r.record,
            image: Some(r.image),
            sweep: None,
            best: None,
        })
    }
    fn program_model(&self, workload: &Workload, _platform: &dyn Platform) -> Option<ProgramModel> {
        workload.ffbp().map(crate::program_model::ffbp_ref_model)
    }
}

/// FFBP on one Epiphany core (Table I row 2).
pub struct FfbpSeqMapping;

impl Mapping for FfbpSeqMapping {
    fn name(&self) -> &'static str {
        "ffbp_seq"
    }
    fn kernel(&self) -> &'static str {
        "ffbp"
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        kind == PlatformKind::Epiphany
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .ffbp()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let params = platform
            .epiphany_params()
            .ok_or_else(|| unsupported(self, platform))?;
        let r = ffbp_seq::run_traced(w, params, tracer.clone());
        Ok(MappingRun {
            record: r.record,
            image: Some(r.image),
            sweep: None,
            best: None,
        })
    }
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        workload
            .ffbp()
            .map(|w| crate::program_model::ffbp_seq_model(w, platform_mesh(platform)))
    }
}

/// FFBP on 16 Epiphany cores, SPMD (Table I row 3).
#[derive(Default)]
pub struct FfbpSpmdMapping {
    /// Driver knobs (cores, prefetch). Default: the paper's 16 cores.
    pub opts: ffbp_spmd::SpmdOptions,
}

impl Mapping for FfbpSpmdMapping {
    fn name(&self) -> &'static str {
        "ffbp_spmd"
    }
    fn kernel(&self) -> &'static str {
        "ffbp"
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        kind == PlatformKind::Epiphany
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .ffbp()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let params = platform
            .epiphany_params()
            .ok_or_else(|| unsupported(self, platform))?;
        let r = ffbp_spmd::run_traced(w, params, self.opts, tracer.clone());
        Ok(MappingRun {
            record: r.record,
            image: Some(r.image),
            sweep: None,
            best: None,
        })
    }
    fn execute_ctx(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        ctx: &RunContext,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .ffbp()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let params = platform
            .epiphany_params()
            .ok_or_else(|| unsupported(self, platform))?;
        let r =
            ffbp_spmd::run_faulted(w, params, self.opts, ctx.tracer.clone(), ctx.faults.clone());
        Ok(MappingRun {
            record: r.record,
            image: Some(r.image),
            sweep: None,
            best: None,
        })
    }
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        workload
            .ffbp()
            .map(|w| crate::program_model::ffbp_spmd_model(w, &self.opts, platform_mesh(platform)))
    }
}

/// FFBP on the host's own threads, wall-clock timed.
pub struct FfbpHostMapping;

impl Mapping for FfbpHostMapping {
    fn name(&self) -> &'static str {
        "ffbp_host"
    }
    fn kernel(&self) -> &'static str {
        "ffbp"
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        kind == PlatformKind::Host
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        _tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .ffbp()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let threads = platform
            .host_threads()
            .ok_or_else(|| unsupported(self, platform))?;
        let label = format!("FFBP / host, {threads} threads (std::thread)");
        let (mut record, r) = sim_harness::BenchHarness::host_record(&label, || {
            sar_core::parallel::ffbp_parallel(&w.data, &w.geom, &w.config, threads)
        });
        record.set_metric("threads", threads as f64);
        record.set_metric("merge_iterations", f64::from(r.iterations));
        Ok(MappingRun {
            record,
            image: Some(r.image),
            sweep: None,
            best: None,
        })
    }
}

/// Autofocus on one reference-CPU core (Table I row 4).
pub struct AutofocusRefMapping;

impl Mapping for AutofocusRefMapping {
    fn name(&self) -> &'static str {
        "autofocus_ref"
    }
    fn kernel(&self) -> &'static str {
        "autofocus"
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        kind == PlatformKind::RefCpu
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        _tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .autofocus()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let mut params = platform
            .refcpu_params()
            .ok_or_else(|| unsupported(self, platform))?;
        params.sustained_ipc = AUTOFOCUS_SUSTAINED_IPC;
        let r = autofocus_ref::run(w, params);
        Ok(MappingRun {
            record: r.record,
            image: None,
            sweep: Some(r.sweep),
            best: Some(r.best),
        })
    }
    fn program_model(&self, workload: &Workload, _platform: &dyn Platform) -> Option<ProgramModel> {
        workload
            .autofocus()
            .map(crate::program_model::autofocus_ref_model)
    }
}

/// Autofocus on one Epiphany core (Table I row 5).
pub struct AutofocusSeqMapping;

impl Mapping for AutofocusSeqMapping {
    fn name(&self) -> &'static str {
        "autofocus_seq"
    }
    fn kernel(&self) -> &'static str {
        "autofocus"
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        kind == PlatformKind::Epiphany
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .autofocus()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let mut params = platform
            .epiphany_params()
            .ok_or_else(|| unsupported(self, platform))?;
        params.pairing_efficiency = AUTOFOCUS_PAIRING;
        let r = autofocus_seq::run_traced(w, params, tracer.clone());
        Ok(MappingRun {
            record: r.record,
            image: None,
            sweep: Some(r.sweep),
            best: Some(r.best),
        })
    }
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        workload
            .autofocus()
            .map(|w| crate::program_model::autofocus_seq_model(w, platform_mesh(platform)))
    }
}

/// Autofocus as the hand-written 13-core MPMD pipeline (Table I row 6).
pub struct AutofocusMpmdMapping {
    /// Stage-to-core placement. Default: the paper's neighbour mapping.
    pub place: Placement,
}

impl Default for AutofocusMpmdMapping {
    fn default() -> Self {
        AutofocusMpmdMapping {
            place: Placement::neighbor(),
        }
    }
}

impl Mapping for AutofocusMpmdMapping {
    fn name(&self) -> &'static str {
        "autofocus_mpmd"
    }
    fn kernel(&self) -> &'static str {
        "autofocus"
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        kind == PlatformKind::Epiphany
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .autofocus()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let mut params = platform
            .epiphany_params()
            .ok_or_else(|| unsupported(self, platform))?;
        params.pairing_efficiency = AUTOFOCUS_PAIRING;
        let r = autofocus_mpmd::run_traced(w, params, self.place, tracer.clone());
        Ok(MappingRun {
            record: r.record,
            image: None,
            sweep: Some(r.sweep),
            best: Some(r.best),
        })
    }
    fn execute_ctx(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        ctx: &RunContext,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .autofocus()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let mut params = platform
            .epiphany_params()
            .ok_or_else(|| unsupported(self, platform))?;
        params.pairing_efficiency = AUTOFOCUS_PAIRING;
        let r = autofocus_mpmd::run_faulted(
            w,
            params,
            ctx.placement.unwrap_or(self.place),
            ctx.tracer.clone(),
            ctx.faults.clone(),
        );
        Ok(MappingRun {
            record: r.record,
            image: None,
            sweep: Some(r.sweep),
            best: Some(r.best),
        })
    }
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        workload.autofocus().map(|w| {
            crate::program_model::autofocus_mpmd_model(w, &self.place, platform_mesh(platform))
        })
    }
}

/// Autofocus as the declarative `streams` process network.
pub struct AutofocusNetMapping {
    /// Stage-to-core placement. Default: the paper's neighbour mapping.
    pub place: Placement,
}

impl Default for AutofocusNetMapping {
    fn default() -> Self {
        AutofocusNetMapping {
            place: Placement::neighbor(),
        }
    }
}

impl Mapping for AutofocusNetMapping {
    fn name(&self) -> &'static str {
        "autofocus_net"
    }
    fn kernel(&self) -> &'static str {
        "autofocus"
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        kind == PlatformKind::Epiphany
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .autofocus()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let mut params = platform
            .epiphany_params()
            .ok_or_else(|| unsupported(self, platform))?;
        params.pairing_efficiency = AUTOFOCUS_PAIRING;
        let r = autofocus_net::run_traced(w, params, self.place, tracer.clone());
        let mut run = MappingRun {
            record: r.record,
            image: None,
            sweep: Some(r.sweep),
            best: Some(r.best),
        };
        run.record.set_metric("firings", r.firings as f64);
        Ok(run)
    }
    fn execute_ctx(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        ctx: &RunContext,
    ) -> Result<MappingRun, HarnessError> {
        // The process network has no fault-recovery story, so only the
        // tracer and the placement override flow through.
        let placed = AutofocusNetMapping {
            place: ctx.placement.unwrap_or(self.place),
        };
        placed.execute(workload, platform, &ctx.tracer)
    }
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        workload.autofocus().map(|w| {
            crate::program_model::autofocus_pipeline_model(w, &self.place, platform_mesh(platform))
        })
    }
}

/// RDA on one Epiphany core (the sequential reference port).
pub struct RdaSeqMapping;

impl Mapping for RdaSeqMapping {
    fn name(&self) -> &'static str {
        "rda_seq"
    }
    fn kernel(&self) -> &'static str {
        "rda"
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        kind == PlatformKind::Epiphany
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .rda()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let params = platform
            .epiphany_params()
            .ok_or_else(|| unsupported(self, platform))?;
        let r = rda_seq::run_traced(w, params, tracer.clone());
        Ok(MappingRun {
            record: r.record,
            image: Some(r.image),
            sweep: None,
            best: None,
        })
    }
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        workload
            .rda()
            .map(|w| crate::program_model::rda_seq_model(w, platform_mesh(platform)))
    }
}

/// RDA SPMD over the full mesh, with the tiled corner-turn phase.
#[derive(Default)]
pub struct RdaSpmdMapping {
    /// Driver knobs (core pin). Default: every core the mesh provides.
    pub opts: rda_spmd::RdaSpmdOptions,
}

impl Mapping for RdaSpmdMapping {
    fn name(&self) -> &'static str {
        "rda_spmd"
    }
    fn kernel(&self) -> &'static str {
        "rda"
    }
    fn supports(&self, kind: PlatformKind) -> bool {
        kind == PlatformKind::Epiphany
    }
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .rda()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let params = platform
            .epiphany_params()
            .ok_or_else(|| unsupported(self, platform))?;
        let r = rda_spmd::run_traced(w, params, self.opts, tracer.clone());
        Ok(MappingRun {
            record: r.record,
            image: Some(r.image),
            sweep: None,
            best: None,
        })
    }
    fn execute_ctx(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        ctx: &RunContext,
    ) -> Result<MappingRun, HarnessError> {
        let w = workload
            .rda()
            .ok_or_else(|| kernel_mismatch(self, workload))?;
        let params = platform
            .epiphany_params()
            .ok_or_else(|| unsupported(self, platform))?;
        let r = rda_spmd::run_faulted(w, params, self.opts, ctx.tracer.clone(), ctx.faults.clone());
        Ok(MappingRun {
            record: r.record,
            image: Some(r.image),
            sweep: None,
            best: None,
        })
    }
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        workload
            .rda()
            .map(|w| crate::program_model::rda_spmd_model(w, &self.opts, platform_mesh(platform)))
    }
}

/// Every mapping, for exhaustive cross-machine sweeps.
pub fn all_mappings() -> Vec<Box<dyn Mapping>> {
    vec![
        Box::new(FfbpRefMapping),
        Box::new(FfbpSeqMapping),
        Box::new(FfbpSpmdMapping::default()),
        Box::new(FfbpHostMapping),
        Box::new(AutofocusRefMapping),
        Box::new(AutofocusSeqMapping),
        Box::new(AutofocusMpmdMapping::default()),
        Box::new(AutofocusNetMapping::default()),
        Box::new(RdaSeqMapping),
        Box::new(RdaSpmdMapping::default()),
    ]
}

/// Look a mapping up by its record name (the `--mapping` flag of the
/// unified runner).
pub fn mapping_named(name: &str) -> Option<Box<dyn Mapping>> {
    all_mappings().into_iter().find(|m| m.name() == name)
}

/// [`mapping_named`] with a stage-to-core placement override — only
/// the two pipeline mappings are placeable; other names return their
/// registry default.
pub fn mapping_named_placed(name: &str, place: Placement) -> Option<Box<dyn Mapping>> {
    match name {
        "autofocus_mpmd" => Some(Box::new(AutofocusMpmdMapping { place })),
        "autofocus_net" => Some(Box::new(AutofocusNetMapping { place })),
        _ => mapping_named(name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_harness::{all_platforms, platform_named, run};

    #[test]
    fn names_round_trip_through_the_registry() {
        for m in all_mappings() {
            let named = mapping_named(m.name()).expect("name must resolve");
            assert_eq!(named.kernel(), m.kernel());
        }
        assert!(mapping_named("ffbp_gpu").is_none());
    }

    #[test]
    fn every_mapping_supports_exactly_one_platform_family() {
        use sim_harness::PlatformKind::*;
        for m in all_mappings() {
            let supported = [Epiphany, RefCpu, Host]
                .into_iter()
                .filter(|&k| m.supports(k))
                .count();
            assert_eq!(
                supported,
                1,
                "mapping {} supports {supported} families",
                m.name()
            );
        }
    }

    #[test]
    fn supported_pairs_run_and_stamp_identity() {
        for m in all_mappings() {
            let w = Workload::named(m.kernel(), true).expect("kernel resolves");
            for p in all_platforms() {
                let result = run(m.as_ref(), &w, p.as_ref());
                if m.supports(p.kind()) {
                    let out = result.expect("supported pair must run");
                    assert_eq!(out.record.mapping, m.name());
                    assert_eq!(out.record.platform, p.label());
                    assert_eq!(out.record.kernel, m.kernel());
                    assert!(out.record.elapsed.seconds() > 0.0);
                } else {
                    assert!(
                        result.is_err(),
                        "{} on {} must be rejected",
                        m.name(),
                        p.label()
                    );
                }
            }
        }
    }

    #[test]
    fn specialised_params_flow_through_the_harness() {
        // Running through the harness must price identically to the
        // direct driver call with its kernel-specialised params().
        let w = crate::workloads::AutofocusWorkload::small();
        let direct = crate::autofocus_seq::run(&w, crate::autofocus_seq::params());
        let platform = platform_named("epiphany").unwrap();
        let via = run(
            &AutofocusSeqMapping,
            &Workload::Autofocus(w),
            platform.as_ref(),
        )
        .unwrap();
        assert_eq!(via.record.elapsed.cycles, direct.record.elapsed.cycles);
    }

    #[test]
    fn faults_flow_through_the_harness_context() {
        use faultsim::{FaultEvent, FaultPlan, FaultState};
        use sim_harness::{run_ctx, RunContext};
        let w = crate::workloads::AutofocusWorkload::small();
        let platform = platform_named("epiphany").unwrap();
        let plan = FaultPlan::from_events(
            17,
            vec![FaultEvent::FlagDrop {
                at: desim::Cycle(1_000),
            }],
        );
        let ctx = RunContext::plain().with_faults(FaultState::from_plan(&plan));
        let via = run_ctx(
            &AutofocusMpmdMapping::default(),
            &Workload::Autofocus(w),
            platform.as_ref(),
            &ctx,
        )
        .unwrap();
        assert_eq!(via.record.faults.faults_injected, 1);
        assert!(via.record.faults.retries >= 1);
        assert_eq!(via.record.counters.get("fault_seed"), 17);
    }
}
