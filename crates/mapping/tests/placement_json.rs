//! Placement JSON round-trip property: any structurally valid
//! placement survives serialise → parse bit-for-bit, and the parser
//! rejects assignments that reuse a core. Randomness comes from the
//! deterministic `desim` RNG, so a failure replays exactly.

use desim::rng::SmallRng;
use sar_epiphany::autofocus_mpmd::Placement;

/// A random 13-distinct-core placement on the canonical 4x6 id range
/// (some ids deliberately off the 4x4 mesh — the JSON schema does not
/// care which mesh a placement later targets).
fn random_placement(rng: &mut SmallRng) -> Placement {
    let mut sites: Vec<usize> = (0..24).collect();
    // Fisher-Yates with the deterministic stream.
    for i in (1..sites.len()).rev() {
        sites.swap(i, rng.gen_index(0..i + 1));
    }
    Placement {
        range: [
            [sites[0], sites[1], sites[2]],
            [sites[3], sites[4], sites[5]],
        ],
        beam: [
            [sites[6], sites[7], sites[8]],
            [sites[9], sites[10], sites[11]],
        ],
        corr: sites[12],
    }
}

#[test]
fn every_random_placement_round_trips_identically() {
    let mut rng = SmallRng::seed_from_u64(0x91ACE);
    for trial in 0..200 {
        let p = random_placement(&mut rng);
        let text = p.to_json().to_string_pretty();
        let back = Placement::parse(&text)
            .unwrap_or_else(|e| panic!("trial {trial}: rejected own serialisation: {e}"));
        assert_eq!(back, p, "trial {trial} did not round-trip");
    }
}

#[test]
fn duplicate_cores_are_rejected_wherever_they_hide() {
    let mut rng = SmallRng::seed_from_u64(7);
    for trial in 0..50 {
        let p = random_placement(&mut rng);
        // Collapse one random pair of roles onto the same core.
        let mut doc = p;
        doc.corr = doc.range[trial % 2][trial % 3];
        let text = doc.to_json().to_string_pretty();
        let err = Placement::parse(&text).expect_err("duplicate must be rejected");
        assert!(err.contains("13 distinct"), "trial {trial}: {err}");
    }
}

#[test]
fn hand_placements_round_trip_and_remap_consistently() {
    for p in [Placement::neighbor(), Placement::scattered()] {
        let back = Placement::parse(&p.to_json().to_string_pretty()).unwrap();
        assert_eq!(back, p);
        // remap is a pure id substitution, so it commutes with the
        // JSON round-trip.
        let remapped = p.remap(p.corr, 20);
        let back = Placement::parse(&remapped.to_json().to_string_pretty()).unwrap();
        assert_eq!(back, remapped);
    }
}
