//! Fault schedules: the JSON spec, its parser, and the deterministic
//! expansion of seeded random groups into concrete [`FaultEvent`]s.
//!
//! A spec is a JSON document:
//!
//! ```json
//! {
//!   "version": 1,
//!   "faults": [
//!     {"kind": "flag_drop", "at": 2000},
//!     {"kind": "flag_delay", "at": 4000, "extra": 512},
//!     {"kind": "mesh_stall", "mesh": "cmesh", "at": 1000, "extra": 256},
//!     {"kind": "elink_degrade", "at": 8000, "extra": 128},
//!     {"kind": "sdram_bit_error", "at": 12000},
//!     {"kind": "core_halt", "core": 3, "at": 50000},
//!     {"kind": "flag_drop", "count": 4, "window": [0, 200000]}
//!   ]
//! }
//! ```
//!
//! An entry either pins one event to an explicit `"at"` cycle, or is a
//! *group*: `"count"` events with cycles drawn uniformly from
//! `"window": [lo, hi)`. Groups expand deterministically from the run
//! seed — each group gets its own [`SmallRng::split`] child stream in
//! entry order, so inserting a group never reshuffles the draws of the
//! groups after it beyond the one parent-stream step.

use std::fmt;

use desim::trace::MeshKind;
use desim::SmallRng;
use desim::{Cycle, Json};

/// Default extra cycles for perturbation kinds when the spec omits
/// `"extra"`.
pub const DEFAULT_EXTRA_CYCLES: u64 = 256;

/// One scheduled fault, pinned to a simulation cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The next transfer on `mesh` at or after `at` is held `extra`
    /// cycles at its destination (a congested or flaky router window).
    MeshStall {
        /// Which physical mesh stalls.
        mesh: MeshKind,
        /// Cycle the stall arms.
        at: Cycle,
        /// Extra cycles added to the transfer's arrival.
        extra: u64,
    },
    /// The next posted flag write at or after `at` is lost: the data
    /// lands but the consumer's flag never sets.
    FlagDrop {
        /// Cycle the drop arms.
        at: Cycle,
    },
    /// The next posted flag write at or after `at` arrives `extra`
    /// cycles late.
    FlagDelay {
        /// Cycle the delay arms.
        at: Cycle,
        /// Extra cycles added to the flag's delivery.
        extra: u64,
    },
    /// The next off-chip eLink operation at or after `at` runs
    /// degraded, adding `extra` cycles (link retraining window).
    ElinkDegrade {
        /// Cycle the degradation arms.
        at: Cycle,
        /// Extra cycles added to the eLink operation.
        extra: u64,
    },
    /// The next SDRAM access at or after `at` takes a transient bit
    /// error: the device re-reads the row (one extra full access
    /// latency), ECC corrects the data.
    SdramBitError {
        /// Cycle the error arms.
        at: Cycle,
    },
    /// `core` halts permanently at `at`: work it executes after that
    /// cycle is lost and the mapping must recover without it.
    CoreHalt {
        /// The halting core (row-major index).
        core: u32,
        /// Cycle of the halt.
        at: Cycle,
    },
}

impl FaultEvent {
    /// The cycle this event arms at.
    pub fn at(&self) -> Cycle {
        match *self {
            FaultEvent::MeshStall { at, .. }
            | FaultEvent::FlagDrop { at }
            | FaultEvent::FlagDelay { at, .. }
            | FaultEvent::ElinkDegrade { at, .. }
            | FaultEvent::SdramBitError { at }
            | FaultEvent::CoreHalt { at, .. } => at,
        }
    }

    /// Spec name of this event's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::MeshStall { .. } => "mesh_stall",
            FaultEvent::FlagDrop { .. } => "flag_drop",
            FaultEvent::FlagDelay { .. } => "flag_delay",
            FaultEvent::ElinkDegrade { .. } => "elink_degrade",
            FaultEvent::SdramBitError { .. } => "sdram_bit_error",
            FaultEvent::CoreHalt { .. } => "core_halt",
        }
    }
}

/// A malformed fault spec. The message names the offending entry so
/// the CLI can surface it verbatim (diagnostic `CLI005`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description of what was wrong.
    pub message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> SpecError {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SpecError {}

/// Spec format version this parser accepts.
pub const FAULT_SPEC_VERSION: u64 = 1;

/// A fully expanded, deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the random groups were expanded with.
    pub seed: u64,
    /// All scheduled events, sorted by arming cycle (stable on ties:
    /// spec order).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults scheduled).
    pub fn empty(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Build a plan from explicit events (sorted by arming cycle).
    pub fn from_events(seed: u64, mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(FaultEvent::at);
        FaultPlan { seed, events }
    }

    /// Parse a JSON spec and expand its random groups with `seed`.
    /// Same text + same seed always yields the same plan.
    pub fn parse(text: &str, seed: u64) -> Result<FaultPlan, SpecError> {
        let doc = Json::parse(text)
            .map_err(|e| SpecError::new(format!("fault spec is not JSON: {e}")))?;
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| SpecError::new("fault spec is missing a numeric \"version\" field"))?;
        if version != FAULT_SPEC_VERSION {
            return Err(SpecError::new(format!(
                "fault spec version {version} is not supported (expected {FAULT_SPEC_VERSION})"
            )));
        }
        let entries = doc
            .get("faults")
            .and_then(Json::as_array)
            .ok_or_else(|| SpecError::new("fault spec is missing a \"faults\" array"))?;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for (i, entry) in entries.iter().enumerate() {
            parse_entry(entry, i, &mut rng, &mut events)?;
        }
        Ok(FaultPlan::from_events(seed, events))
    }
}

/// Parse one spec entry — a pinned event or a random group — appending
/// the expanded events. `rng` is the parent stream; every group splits
/// one child from it whether or not the group is reached by a pinned
/// entry, keeping expansion order-stable.
fn parse_entry(
    entry: &Json,
    index: usize,
    rng: &mut SmallRng,
    events: &mut Vec<FaultEvent>,
) -> Result<(), SpecError> {
    let ctx = |what: &str| SpecError::new(format!("fault entry {index}: {what}"));
    let kind = entry
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ctx("missing \"kind\""))?
        .to_string();
    let extra = match entry.get("extra") {
        None => DEFAULT_EXTRA_CYCLES,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ctx("\"extra\" must be a non-negative integer"))?,
    };
    let mesh = match entry.get("mesh").map(|m| m.as_str()) {
        None => MeshKind::CMesh,
        Some(Some("cmesh")) => MeshKind::CMesh,
        Some(Some("rmesh")) => MeshKind::RMesh,
        Some(Some("xmesh")) => MeshKind::XMesh,
        Some(_) => return Err(ctx("\"mesh\" must be \"cmesh\", \"rmesh\" or \"xmesh\"")),
    };
    let core = match entry.get("core") {
        None => None,
        Some(v) => Some(
            u32::try_from(
                v.as_u64()
                    .ok_or_else(|| ctx("\"core\" must be an integer"))?,
            )
            .map_err(|_| ctx("\"core\" is out of range"))?,
        ),
    };

    let build = |at: Cycle, core: u32| -> Result<FaultEvent, SpecError> {
        Ok(match kind.as_str() {
            "mesh_stall" => FaultEvent::MeshStall { mesh, at, extra },
            "flag_drop" => FaultEvent::FlagDrop { at },
            "flag_delay" => FaultEvent::FlagDelay { at, extra },
            "elink_degrade" => FaultEvent::ElinkDegrade { at, extra },
            "sdram_bit_error" => FaultEvent::SdramBitError { at },
            "core_halt" => FaultEvent::CoreHalt { core, at },
            other => return Err(ctx(&format!("unknown kind \"{other}\""))),
        })
    };

    match (entry.get("at"), entry.get("count")) {
        (Some(at), None) => {
            let at = Cycle(
                at.as_u64()
                    .ok_or_else(|| ctx("\"at\" must be a non-negative integer"))?,
            );
            let core = match kind.as_str() {
                "core_halt" => core.ok_or_else(|| ctx("core_halt needs a \"core\""))?,
                _ => core.unwrap_or(0),
            };
            events.push(build(at, core)?);
            Ok(())
        }
        (None, Some(count)) => {
            let count = count
                .as_u64()
                .ok_or_else(|| ctx("\"count\" must be a non-negative integer"))?;
            let window = entry
                .get("window")
                .and_then(Json::as_array)
                .ok_or_else(|| ctx("a group entry needs \"window\": [lo, hi]"))?;
            let [lo, hi] = window else {
                return Err(ctx("\"window\" must have exactly two elements"));
            };
            let (lo, hi) = (
                lo.as_u64()
                    .ok_or_else(|| ctx("window bounds must be integers"))?,
                hi.as_u64()
                    .ok_or_else(|| ctx("window bounds must be integers"))?,
            );
            if lo >= hi {
                return Err(ctx("\"window\" must satisfy lo < hi"));
            }
            // One child stream per group: a group's draws never depend
            // on how many events other groups expand to.
            let mut group = rng.split();
            for _ in 0..count {
                let at = Cycle(group.gen_u64(lo..hi));
                let core = match (kind.as_str(), core) {
                    ("core_halt", Some(c)) => c,
                    ("core_halt", None) => {
                        u32::try_from(group.gen_index(0..16)).expect("mesh core index fits u32")
                    }
                    (_, c) => c.unwrap_or(0),
                };
                events.push(build(at, core)?);
            }
            Ok(())
        }
        (Some(_), Some(_)) => Err(ctx("\"at\" and \"count\" are mutually exclusive")),
        (None, None) => Err(ctx("entry needs either \"at\" or \"count\" + \"window\"")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "version": 1,
        "faults": [
            {"kind": "flag_drop", "at": 2000},
            {"kind": "mesh_stall", "mesh": "rmesh", "at": 1000, "extra": 300},
            {"kind": "core_halt", "core": 3, "at": 50000},
            {"kind": "sdram_bit_error", "count": 3, "window": [100, 90000]}
        ]
    }"#;

    #[test]
    fn parses_and_sorts_by_cycle() {
        let plan = FaultPlan::parse(SPEC, 7).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.events.len(), 6);
        for w in plan.events.windows(2) {
            assert!(w[0].at() <= w[1].at(), "{:?}", plan.events);
        }
        assert!(plan.events.iter().any(|e| matches!(
            e,
            FaultEvent::MeshStall {
                mesh: MeshKind::RMesh,
                extra: 300,
                ..
            }
        )));
        assert!(plan.events.contains(&FaultEvent::CoreHalt {
            core: 3,
            at: Cycle(50_000)
        }));
    }

    #[test]
    fn expansion_is_deterministic_per_seed() {
        let a = FaultPlan::parse(SPEC, 7).unwrap();
        let b = FaultPlan::parse(SPEC, 7).unwrap();
        let c = FaultPlan::parse(SPEC, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "a different seed must move the group draws");
        // Pinned events are seed-independent.
        assert!(c.events.contains(&FaultEvent::FlagDrop { at: Cycle(2000) }));
    }

    #[test]
    fn group_draws_stay_in_window() {
        let plan = FaultPlan::parse(SPEC, 123).unwrap();
        for e in &plan.events {
            if let FaultEvent::SdramBitError { at } = e {
                assert!((100..90_000).contains(&at.raw()), "{at:?}");
            }
        }
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        let cases = [
            ("not json", "not JSON"),
            (r#"{"faults": []}"#, "version"),
            (r#"{"version": 2, "faults": []}"#, "version 2"),
            (r#"{"version": 1}"#, "faults"),
            (r#"{"version": 1, "faults": [{"at": 5}]}"#, "kind"),
            (
                r#"{"version": 1, "faults": [{"kind": "bad", "at": 5}]}"#,
                "unknown kind",
            ),
            (
                r#"{"version": 1, "faults": [{"kind": "flag_drop"}]}"#,
                "either",
            ),
            (
                r#"{"version": 1, "faults": [{"kind": "core_halt", "at": 5}]}"#,
                "core",
            ),
            (
                r#"{"version": 1, "faults": [{"kind": "flag_drop", "count": 2, "window": [9, 3]}]}"#,
                "lo < hi",
            ),
            (
                r#"{"version": 1, "faults": [{"kind": "mesh_stall", "mesh": "zmesh", "at": 1}]}"#,
                "mesh",
            ),
        ];
        for (text, needle) in cases {
            let err = FaultPlan::parse(text, 0).expect_err(text);
            assert!(
                err.message.contains(needle),
                "{text}: {} should mention {needle}",
                err.message
            );
        }
    }
}
