//! `faultsim` — deterministic fault schedules and injection state
//! (DESIGN.md §3 S15).
//!
//! The simulator's timing model is fully deterministic, and fault
//! injection keeps that property: a [`FaultPlan`] is a sorted list of
//! fault events, either pinned to explicit cycles in a JSON spec or
//! expanded from seeded random groups ([`desim::SmallRng`] child
//! streams — same seed, same plan, always). At run time a [`FaultState`]
//! carries the plan's per-site queues through the machine models; each
//! injection site pops its queue when the simulation clock passes an
//! event's cycle, so every scheduled event perturbs **exactly one**
//! operation and a re-run with the same seed replays the same faults
//! against the same operations.
//!
//! The state clones like [`desim::Tracer`] (a shared `Rc` handle, or
//! `None` when disabled) and mirrors its overhead contract: a disabled
//! `FaultState` never allocates and costs one branch per query, guarded
//! by `tests/disabled_overhead.rs`.

#![forbid(unsafe_code)]

pub mod plan;
pub mod state;

pub use plan::{FaultEvent, FaultPlan, SpecError};
pub use state::{FaultState, FlagFault};
