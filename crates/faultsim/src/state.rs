//! Run-time fault state: per-site event queues the machine models
//! query at each injection point, plus central recovery accounting.
//!
//! [`FaultState`] clones like [`desim::Tracer`]: a cheap shared handle
//! (`Rc<RefCell<..>>`) threaded through the mesh, the SDRAM model and
//! the chip, or `None` when faults are disabled. Every query method is
//! a single branch on the disabled path and never allocates — the
//! contract `tests/disabled_overhead.rs` guards.
//!
//! Injection semantics ("exactly once"): each fault site owns a queue
//! sorted by arming cycle. An operation at simulation time `now` pops
//! and fires the front event iff `now >= at` — so an armed event
//! perturbs precisely the first qualifying operation and no other, and
//! because the simulation itself is deterministic, the same plan hits
//! the same operation on every run.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use desim::trace::MeshKind;
use desim::{Cycle, FaultRecord};

use crate::plan::{FaultEvent, FaultPlan};

/// How a posted flag write is perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagFault {
    /// The flag never sets; the consumer must time out and request a
    /// re-send.
    Drop,
    /// The flag sets late by the given number of cycles.
    Delay(u64),
}

/// One pending core halt.
#[derive(Debug, Clone, Copy)]
struct Halt {
    core: u32,
    at: Cycle,
    /// Set once a recovery policy has observed the halt (counted as
    /// one injected fault at that moment).
    observed: bool,
}

#[derive(Debug, Default)]
struct Inner {
    seed: u64,
    /// Per-mesh stall queues, indexed [cmesh, rmesh, xmesh].
    mesh: [VecDeque<(Cycle, u64)>; 3],
    flags: VecDeque<(Cycle, FlagFault)>,
    elink: VecDeque<(Cycle, u64)>,
    sdram: VecDeque<Cycle>,
    halts: Vec<Halt>,
    totals: FaultRecord,
}

fn mesh_index(kind: MeshKind) -> usize {
    match kind {
        MeshKind::CMesh => 0,
        MeshKind::RMesh => 1,
        MeshKind::XMesh => 2,
    }
}

/// Pop the front of `queue` iff it has armed by `now`, bumping the
/// injection counter.
fn pop_armed<T: Copy>(
    queue: &mut VecDeque<(Cycle, T)>,
    now: Cycle,
    injected: &mut u64,
) -> Option<T> {
    match queue.front() {
        Some(&(at, payload)) if now >= at => {
            queue.pop_front();
            *injected += 1;
            Some(payload)
        }
        _ => None,
    }
}

/// Shared fault-injection handle. Clones are handles to the same
/// state; [`FaultState::disabled`] is a no-op handle.
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl FaultState {
    /// A disabled handle: every query returns "no fault" after one
    /// branch, nothing is ever counted, nothing allocates.
    pub fn disabled() -> FaultState {
        FaultState { inner: None }
    }

    /// Build the run-time state for a plan: events are dealt to their
    /// site queues in arming order.
    pub fn from_plan(plan: &FaultPlan) -> FaultState {
        let mut inner = Inner {
            seed: plan.seed,
            ..Inner::default()
        };
        for &e in &plan.events {
            match e {
                FaultEvent::MeshStall { mesh, at, extra } => {
                    inner.mesh[mesh_index(mesh)].push_back((at, extra));
                }
                FaultEvent::FlagDrop { at } => inner.flags.push_back((at, FlagFault::Drop)),
                FaultEvent::FlagDelay { at, extra } => {
                    inner.flags.push_back((at, FlagFault::Delay(extra)));
                }
                FaultEvent::ElinkDegrade { at, extra } => inner.elink.push_back((at, extra)),
                FaultEvent::SdramBitError { at } => inner.sdram.push_back(at),
                FaultEvent::CoreHalt { core, at } => inner.halts.push(Halt {
                    core,
                    at,
                    observed: false,
                }),
            }
        }
        FaultState {
            inner: Some(Rc::new(RefCell::new(inner))),
        }
    }

    /// Whether this handle carries a fault plan.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The seed the plan was expanded with (None when disabled).
    pub fn seed(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.borrow().seed)
    }

    /// A transfer starts on `kind` at `now`: extra arrival cycles if a
    /// stall has armed.
    #[inline]
    pub fn mesh_stall(&self, kind: MeshKind, now: Cycle) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let mut i = inner.borrow_mut();
        let Inner { mesh, totals, .. } = &mut *i;
        pop_armed(
            &mut mesh[mesh_index(kind)],
            now,
            &mut totals.faults_injected,
        )
    }

    /// A posted flag write issues at `now`: how it is perturbed, if an
    /// event has armed.
    #[inline]
    pub fn flag_fault(&self, now: Cycle) -> Option<FlagFault> {
        let inner = self.inner.as_ref()?;
        let mut i = inner.borrow_mut();
        let Inner { flags, totals, .. } = &mut *i;
        pop_armed(flags, now, &mut totals.faults_injected)
    }

    /// An eLink operation starts at `now`: extra cycles if a
    /// degradation window has armed.
    #[inline]
    pub fn elink_degrade(&self, now: Cycle) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let mut i = inner.borrow_mut();
        let Inner { elink, totals, .. } = &mut *i;
        pop_armed(elink, now, &mut totals.faults_injected)
    }

    /// An SDRAM access starts at `now`: true if a transient bit error
    /// has armed (the device re-reads the row; ECC corrects the data).
    #[inline]
    pub fn sdram_bit_error(&self, now: Cycle) -> bool {
        let Some(inner) = self.inner.as_ref() else {
            return false;
        };
        let mut i = inner.borrow_mut();
        let Inner { sdram, totals, .. } = &mut *i;
        match sdram.front() {
            Some(&at) if now >= at => {
                sdram.pop_front();
                totals.faults_injected += 1;
                true
            }
            _ => false,
        }
    }

    /// Halts that have armed by `now` and have not been observed yet.
    /// Each returned core is counted as one injected fault and will not
    /// be reported again — recovery policies call this once per
    /// checkpoint to learn which cores died since the last one.
    pub fn newly_halted(&self, now: Cycle) -> Vec<u32> {
        let Some(inner) = self.inner.as_ref() else {
            return Vec::new();
        };
        let mut i = inner.borrow_mut();
        let mut out = Vec::new();
        let Inner { halts, totals, .. } = &mut *i;
        for h in halts.iter_mut() {
            if !h.observed && now >= h.at {
                h.observed = true;
                totals.faults_injected += 1;
                out.push(h.core);
            }
        }
        out
    }

    /// Whether `core` has halted by `now` (pure query; does not count
    /// or consume anything).
    #[inline]
    pub fn halted(&self, core: u32, now: Cycle) -> bool {
        let Some(inner) = self.inner.as_ref() else {
            return false;
        };
        inner
            .borrow()
            .halts
            .iter()
            .any(|h| h.core == core && now >= h.at)
    }

    /// Record `n` protocol retries (message re-sends).
    #[inline]
    pub fn add_retries(&self, n: u64) {
        if let Some(inner) = self.inner.as_ref() {
            inner.borrow_mut().totals.retries += n;
        }
    }

    /// Record `n` cycles spent on fault detection and re-execution.
    #[inline]
    pub fn add_recovery_cycles(&self, n: u64) {
        if let Some(inner) = self.inner.as_ref() {
            inner.borrow_mut().totals.recovery_cycles += n;
        }
    }

    /// Record modelled energy attributable to recovery, joules.
    #[inline]
    pub fn add_recovery_energy(&self, joules: f64) {
        if let Some(inner) = self.inner.as_ref() {
            inner.borrow_mut().totals.recovery_energy_j += joules;
        }
    }

    /// Record `n` cores written off into degraded mode.
    #[inline]
    pub fn add_degraded_cores(&self, n: u64) {
        if let Some(inner) = self.inner.as_ref() {
            inner.borrow_mut().totals.degraded_cores += n;
        }
    }

    /// Snapshot of the accumulated accounting (all-zero when
    /// disabled) — this is what lands in `RunRecord::faults`.
    pub fn totals(&self) -> FaultRecord {
        self.inner
            .as_ref()
            .map_or_else(FaultRecord::default, |i| i.borrow().totals)
    }

    /// Scheduled events not yet fired (0 when disabled). A clean
    /// recovered run should usually have drained its plan.
    pub fn pending(&self) -> usize {
        let Some(inner) = self.inner.as_ref() else {
            return 0;
        };
        let i = inner.borrow();
        i.mesh.iter().map(VecDeque::len).sum::<usize>()
            + i.flags.len()
            + i.elink.len()
            + i.sdram.len()
            + i.halts.iter().filter(|h| !h.observed).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(events: Vec<FaultEvent>) -> FaultState {
        FaultState::from_plan(&FaultPlan::from_events(1, events))
    }

    #[test]
    fn disabled_state_reports_nothing() {
        let f = FaultState::disabled();
        assert!(!f.is_enabled());
        assert_eq!(f.seed(), None);
        assert_eq!(f.mesh_stall(MeshKind::CMesh, Cycle(1_000_000)), None);
        assert_eq!(f.flag_fault(Cycle(1_000_000)), None);
        assert_eq!(f.elink_degrade(Cycle(1_000_000)), None);
        assert!(!f.sdram_bit_error(Cycle(1_000_000)));
        assert!(f.newly_halted(Cycle(1_000_000)).is_empty());
        assert!(!f.halted(0, Cycle(1_000_000)));
        f.add_retries(5);
        f.add_recovery_cycles(5);
        assert_eq!(f.totals(), FaultRecord::default());
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn events_fire_exactly_once_in_order() {
        let f = state(vec![
            FaultEvent::MeshStall {
                mesh: MeshKind::CMesh,
                at: Cycle(100),
                extra: 7,
            },
            FaultEvent::MeshStall {
                mesh: MeshKind::CMesh,
                at: Cycle(200),
                extra: 9,
            },
        ]);
        // Not armed yet.
        assert_eq!(f.mesh_stall(MeshKind::CMesh, Cycle(50)), None);
        // A different mesh never sees cmesh events.
        assert_eq!(f.mesh_stall(MeshKind::RMesh, Cycle(500)), None);
        // First qualifying op takes the first event; even at a time
        // past both arming cycles only one fires per op.
        assert_eq!(f.mesh_stall(MeshKind::CMesh, Cycle(500)), Some(7));
        assert_eq!(f.mesh_stall(MeshKind::CMesh, Cycle(500)), Some(9));
        assert_eq!(f.mesh_stall(MeshKind::CMesh, Cycle(500)), None);
        assert_eq!(f.totals().faults_injected, 2);
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn flag_faults_pop_in_schedule_order() {
        let f = state(vec![
            FaultEvent::FlagDelay {
                at: Cycle(10),
                extra: 64,
            },
            FaultEvent::FlagDrop { at: Cycle(20) },
        ]);
        assert_eq!(f.flag_fault(Cycle(15)), Some(FlagFault::Delay(64)));
        assert_eq!(f.flag_fault(Cycle(15)), None, "drop not armed yet");
        assert_eq!(f.flag_fault(Cycle(25)), Some(FlagFault::Drop));
        assert_eq!(f.totals().faults_injected, 2);
    }

    #[test]
    fn halts_are_observed_once_but_queryable_forever() {
        let f = state(vec![
            FaultEvent::CoreHalt {
                core: 3,
                at: Cycle(1000),
            },
            FaultEvent::CoreHalt {
                core: 7,
                at: Cycle(5000),
            },
        ]);
        assert!(f.newly_halted(Cycle(500)).is_empty());
        assert!(!f.halted(3, Cycle(500)));
        assert_eq!(f.newly_halted(Cycle(2000)), vec![3]);
        assert!(f.newly_halted(Cycle(2000)).is_empty(), "observed once");
        assert!(f.halted(3, Cycle(2000)), "still halted");
        assert_eq!(f.newly_halted(Cycle(9000)), vec![7]);
        assert_eq!(f.totals().faults_injected, 2);
    }

    #[test]
    fn accounting_accumulates_through_clones() {
        let f = state(vec![FaultEvent::SdramBitError { at: Cycle(0) }]);
        let g = f.clone();
        assert!(g.sdram_bit_error(Cycle(5)));
        assert!(!g.sdram_bit_error(Cycle(5)));
        f.add_retries(2);
        g.add_retries(1);
        f.add_recovery_cycles(100);
        f.add_recovery_energy(1e-6);
        f.add_degraded_cores(1);
        let t = f.totals();
        assert_eq!(t.faults_injected, 1);
        assert_eq!(t.retries, 3);
        assert_eq!(t.recovery_cycles, 100);
        assert_eq!(t.degraded_cores, 1);
        assert!(t.recovery_energy_j > 0.0);
        assert_eq!(g.totals(), t, "clones share one accounting state");
    }
}
