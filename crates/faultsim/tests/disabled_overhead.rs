//! The fault hooks' overhead guarantee: a *disabled* [`FaultState`]
//! must not allocate, no matter how many injection-point queries hit
//! it — the no-`--faults` path must stay bit-identical and free. Same
//! counting-allocator pattern as `desim`'s tracer guard.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use desim::trace::MeshKind;
use desim::Cycle;
use faultsim::FaultState;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_fault_state_never_allocates() {
    let faults = FaultState::disabled();
    // Warm up once so any lazy statics in the harness are paid for.
    let _ = faults.mesh_stall(MeshKind::CMesh, Cycle(0));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..100_000u64 {
        let now = Cycle(i);
        assert!(faults.mesh_stall(MeshKind::CMesh, now).is_none());
        assert!(faults.mesh_stall(MeshKind::XMesh, now).is_none());
        assert!(faults.flag_fault(now).is_none());
        assert!(faults.elink_degrade(now).is_none());
        assert!(!faults.sdram_bit_error(now));
        assert!(!faults.halted((i % 16) as u32, now));
        faults.add_retries(1);
        faults.add_recovery_cycles(10);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled fault state allocated {} times",
        after - before
    );
    assert_eq!(faults.totals(), desim::FaultRecord::default());
}
