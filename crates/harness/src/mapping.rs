//! The kernel side of the harness: one object-safe trait every driver
//! (SPMD, MPMD, sequential, reference, host-parallel) implements.

use std::fmt;

use desim::trace::{Tracer, Track};
use desim::{
    EnergyRecord, MeshUtilization, PhaseAttribution, PhasePower, PhaseRecord, PowerEpoch,
    PowerRecord, PowerTimeline, RunRecord,
};
use faultsim::FaultState;
use sar_core::image::ComplexImage;

use crate::model::ProgramModel;
use crate::placement::Placement;
use crate::platform::{Platform, PlatformKind};
use crate::workload::Workload;

/// Everything a driver may consult while executing: the run's event
/// timeline, its fault schedule, and an optional placement override.
/// [`run_ctx`] passes it through to [`Mapping::execute_ctx`];
/// [`run_traced`] wraps a bare tracer in a fault-free context, so the
/// two entry points price identically when no faults are armed.
#[derive(Clone)]
pub struct RunContext {
    /// Event timeline (disabled unless the caller requested a trace).
    pub tracer: Tracer,
    /// Fault schedule (disabled unless the caller armed one).
    pub faults: FaultState,
    /// Placement override for placement-aware mappings (`None` keeps
    /// the mapping's own placement). Mappings without a placement
    /// ignore it — injecting a placement never changes kernel results,
    /// only routing.
    pub placement: Option<Placement>,
}

impl Default for RunContext {
    fn default() -> RunContext {
        RunContext {
            tracer: Tracer::disabled(),
            faults: FaultState::disabled(),
            placement: None,
        }
    }
}

impl RunContext {
    /// Neither tracing nor faults — the plain [`run`] path.
    pub fn plain() -> RunContext {
        RunContext::default()
    }

    /// Tracing only.
    pub fn traced(tracer: Tracer) -> RunContext {
        RunContext {
            tracer,
            ..RunContext::default()
        }
    }

    /// Replace the fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultState) -> RunContext {
        self.faults = faults;
        self
    }

    /// Override the placement of placement-aware mappings.
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> RunContext {
        self.placement = Some(placement);
        self
    }
}

/// What a mapping returns: the machine record plus whichever functional
/// outputs the kernel produces (used by the cross-machine identity
/// tests — the paper's "results are identical on every machine").
pub struct MappingRun {
    /// The priced run.
    pub record: RunRecord,
    /// The formed image (FFBP mappings).
    pub image: Option<ComplexImage>,
    /// `(shift, criterion)` per hypothesis (autofocus mappings).
    pub sweep: Option<Vec<(f32, f32)>>,
    /// The winning compensation (autofocus mappings).
    pub best: Option<(f32, f32)>,
}

impl MappingRun {
    /// A run carrying only a record (ablation-style outputs).
    pub fn record_only(record: RunRecord) -> MappingRun {
        MappingRun {
            record,
            image: None,
            sweep: None,
            best: None,
        }
    }
}

/// Why a `run()` request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// The workload variant does not match the mapping's kernel.
    KernelMismatch {
        /// The mapping's kernel.
        mapping: String,
        /// The workload's kernel.
        workload: String,
    },
    /// The mapping cannot run on the requested machine family.
    UnsupportedPlatform {
        /// The mapping's name.
        mapping: String,
        /// The rejected platform label.
        platform: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::KernelMismatch { mapping, workload } => {
                write!(f, "mapping '{mapping}' cannot run a '{workload}' workload")
            }
            HarnessError::UnsupportedPlatform { mapping, platform } => {
                write!(
                    f,
                    "mapping '{mapping}' does not support platform '{platform}'"
                )
            }
        }
    }
}

impl std::error::Error for HarnessError {}

/// One way of running a kernel on a machine family. Implementations
/// live next to their drivers (in `sar-epiphany`); the harness only
/// needs the trait.
pub trait Mapping {
    /// Identity stamped into [`RunRecord::mapping`] and resolved by the
    /// `--mapping` flag (e.g. `"ffbp_spmd"`).
    fn name(&self) -> &'static str;
    /// The kernel this runs: `"ffbp"` or `"autofocus"`.
    fn kernel(&self) -> &'static str;
    /// Whether the mapping can execute on `kind`.
    fn supports(&self, kind: PlatformKind) -> bool;
    /// Run the workload. Called through [`crate::run`], which validates
    /// kernel/platform compatibility first and stamps record identity
    /// after. `tracer` is the run's event timeline — disabled unless
    /// the caller requested a trace; drivers with machine models hand
    /// it to the chip, others may ignore it (the harness synthesises
    /// phase spans from the record).
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        tracer: &Tracer,
    ) -> Result<MappingRun, HarnessError>;
    /// Run the workload with a full run context (tracer + fault
    /// schedule). The default forwards to [`Mapping::execute`] and
    /// ignores the fault schedule — only mappings with a recovery
    /// story override this, and they must keep the fault-free path
    /// bit-identical to `execute`.
    fn execute_ctx(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
        ctx: &RunContext,
    ) -> Result<MappingRun, HarnessError> {
        self.execute(workload, platform, &ctx.tracer)
    }
    /// What the mapping declares about its memory, channels and
    /// synchronisation — the input to the `sarlint` static checks
    /// (DESIGN.md §3 S14). `None` means the mapping makes no checkable
    /// claims (host threads, the reference CPU).
    fn program_model(&self, workload: &Workload, platform: &dyn Platform) -> Option<ProgramModel> {
        let _ = (workload, platform);
        None
    }
}

/// The single entry point: validate the kernel × machine pair, execute,
/// and stamp the record with its full identity. Runs untraced — use
/// [`run_traced`] to capture an event timeline.
pub fn run(
    mapping: &dyn Mapping,
    workload: &Workload,
    platform: &dyn Platform,
) -> Result<MappingRun, HarnessError> {
    run_traced(mapping, workload, platform, &Tracer::disabled())
}

/// [`run`] with an event timeline: every span/instant the machine
/// models emit lands in `tracer`. For mappings whose driver has no
/// tracer-aware machine model (reference CPU, host threads), the
/// closed record's phases are replayed as [`Track::Run`] spans so a
/// trace of *any* registered pair has at least its phase timeline.
pub fn run_traced(
    mapping: &dyn Mapping,
    workload: &Workload,
    platform: &dyn Platform,
    tracer: &Tracer,
) -> Result<MappingRun, HarnessError> {
    run_ctx(
        mapping,
        workload,
        platform,
        &RunContext::traced(tracer.clone()),
    )
}

/// The full entry point: [`run_traced`] plus a fault schedule. When
/// faults are armed the seed is stamped into the record's counters
/// (`fault_seed`), so a record alone is enough to reproduce its run.
pub fn run_ctx(
    mapping: &dyn Mapping,
    workload: &Workload,
    platform: &dyn Platform,
    ctx: &RunContext,
) -> Result<MappingRun, HarnessError> {
    if workload.kernel() != mapping.kernel() {
        return Err(HarnessError::KernelMismatch {
            mapping: mapping.name().to_string(),
            workload: workload.kernel().to_string(),
        });
    }
    if !mapping.supports(platform.kind()) {
        return Err(HarnessError::UnsupportedPlatform {
            mapping: mapping.name().to_string(),
            platform: platform.label().to_string(),
        });
    }
    let mut out = mapping.execute_ctx(workload, platform, ctx)?;
    out.record.kernel = mapping.kernel().to_string();
    out.record.mapping = mapping.name().to_string();
    out.record.platform = platform.label().to_string();
    out.record.power_w = platform.datasheet_power_w();
    if let Some(seed) = ctx.faults.seed() {
        out.record.counters.add("fault_seed", seed);
    }
    if ctx.tracer.is_enabled() && !ctx.tracer.has_span_on(Track::Run) {
        replay_phases(&out.record, &ctx.tracer);
    }
    finalize_power(&mut out.record);
    Ok(out)
}

/// Close the record's energy books so every registered pair satisfies
/// the powertrace invariants, whatever its driver provided:
///
/// 1. Phases on datasheet-priced platforms (no activity-based energy
///    model) get `power_w × time` energy instead of `0.0`.
/// 2. Energy the phases don't cover (warm-up, gaps, drain — or drivers
///    that report no phases at all) lands in a synthetic
///    `"unattributed"` phase, so `Σ phases.energy_j == energy_j()`.
/// 3. Records without a power block (every platform but the Epiphany
///    chip model) get one synthesised from their phase timings: one
///    epoch per phase, energy on the `static` channel (datasheet power
///    is leakage-shaped — no activity decomposition exists), stall
///    fraction lifted from the driver's `mem_stall_cycles` metric when
///    present.
///
/// Runs after [`replay_phases`] so the synthetic phase is never
/// replayed as a trace span.
fn finalize_power(record: &mut RunRecord) {
    // 1. Datasheet pricing for drivers without an energy model.
    if !record.energy.is_modelled() && record.power_w > 0.0 {
        for p in &mut record.phases {
            if p.energy_j == 0.0 {
                p.energy_j = record.power_w * p.time_ms * 1e-3;
            }
        }
    }

    // 2. Attribute the residual. Phase deltas are non-negative and the
    // phases are disjoint, so the residual is non-negative up to
    // rounding; a sub-epsilon residual is rounding, not a gap.
    let total_j = record.energy_j();
    let covered_j: f64 = record.phases.iter().map(|p| p.energy_j).sum();
    let covered_ms: f64 = record.phases.iter().map(|p| p.time_ms).sum();
    let residual = total_j - covered_j;
    if residual > 1e-12 * total_j.abs().max(1.0) {
        let last_end = record
            .phases
            .iter()
            .map(|p| p.start_ms + p.time_ms)
            .fold(0.0, f64::max);
        record.phases.push(PhaseRecord {
            name: "unattributed".into(),
            index: 0,
            start_ms: last_end,
            time_ms: (record.elapsed.millis() - covered_ms).max(0.0),
            energy_j: residual,
            elink_utilization: 0.0,
            mesh: MeshUtilization::default(),
            metrics: Default::default(),
        });
        if let Some(power) = &mut record.power {
            let covered = power
                .phases
                .iter()
                .fold(EnergyRecord::default(), |acc, p| acc.plus(&p.energy));
            let energy = record.energy.delta_since(&covered);
            power.phases.push(PhasePower {
                name: "unattributed".into(),
                index: 0,
                energy,
                attribution: PhaseAttribution::attribute(&energy, 0.0, 0.0, 0.0),
            });
        }
    }

    // 3. Synthesise a power block from phase timings.
    if record.power.is_none() {
        let clock = record.elapsed.clock;
        let mut timeline = PowerTimeline::new();
        let mut phases = Vec::with_capacity(record.phases.len());
        for p in &record.phases {
            let start = clock.cycles_in(p.start_ms / 1e3);
            let end = clock.cycles_in((p.start_ms + p.time_ms) / 1e3);
            let energy = EnergyRecord {
                static_j: p.energy_j,
                ..EnergyRecord::default()
            };
            timeline.push(PowerEpoch { start, end, energy });
            let span_cycles = end.saturating_sub(start).raw() as f64;
            let stall_fraction = if span_cycles > 0.0 {
                p.metrics
                    .get("mem_stall_cycles")
                    .map_or(0.0, |s| (s / span_cycles).min(1.0))
            } else {
                0.0
            };
            let compute_fraction = if span_cycles > 0.0 {
                1.0 - stall_fraction
            } else {
                0.0
            };
            phases.push(PhasePower {
                name: p.name.clone(),
                index: p.index,
                energy,
                attribution: PhaseAttribution::attribute(
                    &energy,
                    0.0,
                    compute_fraction,
                    stall_fraction,
                ),
            });
        }
        if timeline.epochs.is_empty() {
            timeline.push(PowerEpoch {
                start: desim::Cycle::ZERO,
                end: record.elapsed.cycles,
                energy: EnergyRecord {
                    static_j: total_j,
                    ..EnergyRecord::default()
                },
            });
        }
        record.power = Some(PowerRecord { timeline, phases });
    }
}

/// Synthesise [`Track::Run`] phase spans from a closed record, for
/// drivers that never saw the tracer (their timing lives only in
/// `PhaseRecord`s). Millisecond offsets are mapped back to cycles at
/// the record's clock.
fn replay_phases(record: &RunRecord, tracer: &Tracer) {
    let clock = record.elapsed.clock;
    let to_cycles = |ms: f64| clock.cycles_in(ms / 1e3);
    for p in &record.phases {
        tracer.span(
            Track::Run,
            format!("{}[{}]", p.name, p.index),
            to_cycles(p.start_ms),
            to_cycles(p.start_ms + p.time_ms),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{EpiphanyPlatform, RefCpuPlatform};
    use desim::{Cycle, Frequency, TimeSpan};

    struct NullFfbp;
    impl Mapping for NullFfbp {
        fn name(&self) -> &'static str {
            "ffbp_null"
        }
        fn kernel(&self) -> &'static str {
            "ffbp"
        }
        fn supports(&self, kind: PlatformKind) -> bool {
            kind == PlatformKind::Epiphany
        }
        fn execute(
            &self,
            _w: &Workload,
            _p: &dyn Platform,
            _tracer: &Tracer,
        ) -> Result<MappingRun, HarnessError> {
            let span = TimeSpan::new(Cycle(1000), Frequency::ghz(1.0));
            let mut record = RunRecord::new("null", span);
            record.phases.push(desim::PhaseRecord {
                name: "stage".into(),
                index: 0,
                start_ms: 0.0,
                time_ms: 1e-3,
                energy_j: 0.0,
                elink_utilization: 0.0,
                mesh: desim::MeshUtilization::default(),
                metrics: Default::default(),
            });
            Ok(MappingRun::record_only(record))
        }
    }

    #[test]
    fn run_stamps_full_identity() {
        let w = Workload::named("ffbp", true).unwrap();
        let out = run(&NullFfbp, &w, &EpiphanyPlatform::default()).unwrap();
        assert_eq!(out.record.kernel, "ffbp");
        assert_eq!(out.record.mapping, "ffbp_null");
        assert_eq!(out.record.platform, "epiphany");
        assert_eq!(out.record.power_w, crate::platform::EPIPHANY_POWER_W);
    }

    #[test]
    fn run_rejects_kernel_and_platform_mismatches() {
        let af = Workload::named("autofocus", true).unwrap();
        let err = run(&NullFfbp, &af, &EpiphanyPlatform::default())
            .err()
            .unwrap();
        assert!(matches!(err, HarnessError::KernelMismatch { .. }));
        let ffbp = Workload::named("ffbp", true).unwrap();
        let err = run(&NullFfbp, &ffbp, &RefCpuPlatform::default())
            .err()
            .unwrap();
        assert!(matches!(err, HarnessError::UnsupportedPlatform { .. }));
        assert!(format!("{err}").contains("refcpu"));
    }

    #[test]
    fn run_ctx_stamps_the_fault_seed_only_when_armed() {
        use faultsim::FaultPlan;
        let w = Workload::named("ffbp", true).unwrap();
        let plain = run(&NullFfbp, &w, &EpiphanyPlatform::default()).unwrap();
        assert!(
            !plain.record.counters.contains("fault_seed"),
            "fault-free records must not grow a seed counter"
        );
        let ctx = RunContext::plain().with_faults(FaultState::from_plan(&FaultPlan::empty(42)));
        let armed = run_ctx(&NullFfbp, &w, &EpiphanyPlatform::default(), &ctx).unwrap();
        assert_eq!(armed.record.counters.get("fault_seed"), 42);
        // Identity stamping is shared with the traced path.
        assert_eq!(armed.record.mapping, "ffbp_null");
    }

    #[test]
    fn run_traced_replays_phases_for_tracer_blind_drivers() {
        let w = Workload::named("ffbp", true).unwrap();
        let t = Tracer::enabled();
        let out = run_traced(&NullFfbp, &w, &EpiphanyPlatform::default(), &t).unwrap();
        assert_eq!(out.record.phases.len(), 1);
        assert!(
            t.has_span_on(Track::Run),
            "phases must be replayed as Run-track spans"
        );
    }
}
