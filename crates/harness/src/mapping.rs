//! The kernel side of the harness: one object-safe trait every driver
//! (SPMD, MPMD, sequential, reference, host-parallel) implements.

use std::fmt;

use desim::RunRecord;
use sar_core::image::ComplexImage;

use crate::platform::{Platform, PlatformKind};
use crate::workload::Workload;

/// What a mapping returns: the machine record plus whichever functional
/// outputs the kernel produces (used by the cross-machine identity
/// tests — the paper's "results are identical on every machine").
pub struct MappingRun {
    /// The priced run.
    pub record: RunRecord,
    /// The formed image (FFBP mappings).
    pub image: Option<ComplexImage>,
    /// `(shift, criterion)` per hypothesis (autofocus mappings).
    pub sweep: Option<Vec<(f32, f32)>>,
    /// The winning compensation (autofocus mappings).
    pub best: Option<(f32, f32)>,
}

impl MappingRun {
    /// A run carrying only a record (ablation-style outputs).
    pub fn record_only(record: RunRecord) -> MappingRun {
        MappingRun {
            record,
            image: None,
            sweep: None,
            best: None,
        }
    }
}

/// Why a `run()` request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// The workload variant does not match the mapping's kernel.
    KernelMismatch {
        /// The mapping's kernel.
        mapping: String,
        /// The workload's kernel.
        workload: String,
    },
    /// The mapping cannot run on the requested machine family.
    UnsupportedPlatform {
        /// The mapping's name.
        mapping: String,
        /// The rejected platform label.
        platform: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::KernelMismatch { mapping, workload } => {
                write!(f, "mapping '{mapping}' cannot run a '{workload}' workload")
            }
            HarnessError::UnsupportedPlatform { mapping, platform } => {
                write!(
                    f,
                    "mapping '{mapping}' does not support platform '{platform}'"
                )
            }
        }
    }
}

impl std::error::Error for HarnessError {}

/// One way of running a kernel on a machine family. Implementations
/// live next to their drivers (in `sar-epiphany`); the harness only
/// needs the trait.
pub trait Mapping {
    /// Identity stamped into [`RunRecord::mapping`] and resolved by the
    /// `--mapping` flag (e.g. `"ffbp_spmd"`).
    fn name(&self) -> &'static str;
    /// The kernel this runs: `"ffbp"` or `"autofocus"`.
    fn kernel(&self) -> &'static str;
    /// Whether the mapping can execute on `kind`.
    fn supports(&self, kind: PlatformKind) -> bool;
    /// Run the workload. Called through [`crate::run`], which validates
    /// kernel/platform compatibility first and stamps record identity
    /// after.
    fn execute(
        &self,
        workload: &Workload,
        platform: &dyn Platform,
    ) -> Result<MappingRun, HarnessError>;
}

/// The single entry point: validate the kernel × machine pair, execute,
/// and stamp the record with its full identity.
pub fn run(
    mapping: &dyn Mapping,
    workload: &Workload,
    platform: &dyn Platform,
) -> Result<MappingRun, HarnessError> {
    if workload.kernel() != mapping.kernel() {
        return Err(HarnessError::KernelMismatch {
            mapping: mapping.name().to_string(),
            workload: workload.kernel().to_string(),
        });
    }
    if !mapping.supports(platform.kind()) {
        return Err(HarnessError::UnsupportedPlatform {
            mapping: mapping.name().to_string(),
            platform: platform.label().to_string(),
        });
    }
    let mut out = mapping.execute(workload, platform)?;
    out.record.kernel = mapping.kernel().to_string();
    out.record.mapping = mapping.name().to_string();
    out.record.platform = platform.label().to_string();
    out.record.power_w = platform.datasheet_power_w();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{EpiphanyPlatform, RefCpuPlatform};
    use desim::{Cycle, Frequency, TimeSpan};

    struct NullFfbp;
    impl Mapping for NullFfbp {
        fn name(&self) -> &'static str {
            "ffbp_null"
        }
        fn kernel(&self) -> &'static str {
            "ffbp"
        }
        fn supports(&self, kind: PlatformKind) -> bool {
            kind == PlatformKind::Epiphany
        }
        fn execute(&self, _w: &Workload, _p: &dyn Platform) -> Result<MappingRun, HarnessError> {
            let span = TimeSpan::new(Cycle(1000), Frequency::ghz(1.0));
            Ok(MappingRun::record_only(RunRecord::new("null", span)))
        }
    }

    #[test]
    fn run_stamps_full_identity() {
        let w = Workload::named("ffbp", true).unwrap();
        let out = run(&NullFfbp, &w, &EpiphanyPlatform::default()).unwrap();
        assert_eq!(out.record.kernel, "ffbp");
        assert_eq!(out.record.mapping, "ffbp_null");
        assert_eq!(out.record.platform, "epiphany");
        assert_eq!(out.record.power_w, crate::platform::EPIPHANY_POWER_W);
    }

    #[test]
    fn run_rejects_kernel_and_platform_mismatches() {
        let af = Workload::named("autofocus", true).unwrap();
        let err = run(&NullFfbp, &af, &EpiphanyPlatform::default())
            .err()
            .unwrap();
        assert!(matches!(err, HarnessError::KernelMismatch { .. }));
        let ffbp = Workload::named("ffbp", true).unwrap();
        let err = run(&NullFfbp, &ffbp, &RefCpuPlatform::default())
            .err()
            .unwrap();
        assert!(matches!(err, HarnessError::UnsupportedPlatform { .. }));
        assert!(format!("{err}").contains("refcpu"));
    }
}
