//! The shared bench-binary runner: one flag grammar, one JSON document
//! shape, one results directory for all fourteen report binaries.
//!
//! Flags every binary accepts:
//!
//! * `--small`  — run the reduced test-scale workloads,
//! * `--json`   — print the versioned record document instead of prose,
//! * `--out P`  — write the document to `P` (default
//!   `results/<bench>.json`),
//! * `--no-write` — skip writing the document to disk,
//! * `--trace P` — export a Chrome `trace_event` timeline to `P`,
//! * `--heatmap` — print the per-link mesh heatmap after each run.
//!
//! Binaries keep their own extra flags; [`BenchHarness::flag`] and
//! [`BenchHarness::value`] read them from the same argument list.

use std::path::{Path, PathBuf};
use std::time::Instant;

use desim::trace::Tracer;
use desim::{Cycle, Frequency, Json, RunRecord, TimeSpan, RUN_RECORD_VERSION};

use crate::diag::Diagnostic;

/// Where bench documents land unless `--out` overrides it.
pub const RESULTS_DIR: &str = "results";

/// Guard against silently replacing a results document a *different*
/// schema version wrote: `Err(CLI006)` when `path` holds a parseable
/// bench document whose `version` differs from this writer's
/// [`RUN_RECORD_VERSION`], unless `force`. Missing files, unreadable
/// files and non-document JSON are all fine to (over)write — the
/// guard only protects documents it can actually identify.
pub fn check_overwrite(path: &Path, force: bool) -> Result<(), Diagnostic> {
    if force {
        return Ok(());
    }
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let existing = Json::parse(&text)
        .ok()
        .and_then(|d| d.get("version").and_then(Json::as_u64));
    match existing {
        Some(v) if v != u64::from(RUN_RECORD_VERSION) => Err(Diagnostic::hard(
            "CLI006",
            path.display().to_string(),
            format!(
                "refusing to overwrite a schema-version-{v} document with a \
                 version-{RUN_RECORD_VERSION} one; pass --force to replace it"
            ),
        )),
        _ => Ok(()),
    }
}

/// Per-binary runner: collects [`RunRecord`]s, mirrors human-readable
/// prose to stdout (suppressed under `--json`), and serialises one
/// versioned document at [`BenchHarness::finish`].
pub struct BenchHarness {
    name: &'static str,
    args: Vec<String>,
    records: Vec<RunRecord>,
    extra: Vec<(String, Json)>,
}

impl BenchHarness {
    /// A runner for bench `name`, reading flags from the process
    /// arguments.
    pub fn new(name: &'static str) -> BenchHarness {
        BenchHarness::with_args(name, std::env::args().skip(1).collect())
    }

    /// A runner with explicit arguments (tests).
    pub fn with_args(name: &'static str, args: Vec<String>) -> BenchHarness {
        BenchHarness {
            name,
            args,
            records: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Whether boolean flag `--name` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == &format!("--{name}"))
    }

    /// The operand following `--name`, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        let key = format!("--{name}");
        self.args
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// Like [`BenchHarness::value`], but a present flag whose operand
    /// is missing (end of line, or another `--flag`) is a `CLI002`
    /// diagnostic instead of silently reading `None` — the error path
    /// the unified runner exits through.
    pub fn operand(&self, name: &str) -> Result<Option<&str>, Diagnostic> {
        let key = format!("--{name}");
        match self.args.iter().position(|a| a == &key) {
            None => Ok(None),
            Some(i) => match self.args.get(i + 1).map(String::as_str) {
                Some(v) if !v.starts_with("--") => Ok(Some(v)),
                _ => Err(Diagnostic::hard(
                    "CLI002",
                    key,
                    format!("--{name} requires an operand"),
                )),
            },
        }
    }

    /// Whether the reduced workload scale was requested.
    pub fn small(&self) -> bool {
        self.flag("small")
    }

    /// Whether machine-readable output was requested.
    pub fn json(&self) -> bool {
        self.flag("json")
    }

    /// The `--trace` output path, if tracing was requested.
    pub fn trace_path(&self) -> Option<&str> {
        self.value("trace")
    }

    /// Whether `--heatmap` asked for the per-link mesh table.
    pub fn heatmap(&self) -> bool {
        self.flag("heatmap")
    }

    /// A tracer matching the flags: recording when `--trace` was
    /// passed, disabled (zero-cost) otherwise.
    pub fn tracer(&self) -> Tracer {
        if self.trace_path().is_some() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        }
    }

    /// Serialise `tracer`'s timeline as Chrome `trace_event` JSON at
    /// `path`; `clock` converts cycles to microseconds. Reports the
    /// write (or the failure) on stdout/stderr.
    pub fn write_trace(&self, path: impl AsRef<Path>, tracer: &Tracer, clock: Frequency) {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return;
            }
        }
        let doc = tracer.to_chrome_json(clock);
        match std::fs::write(path, doc.to_string_pretty()) {
            Ok(()) => self.say(format_args!(
                "wrote trace {} ({} events{})",
                path.display(),
                tracer.event_count(),
                if tracer.dropped() > 0 {
                    format!(", {} dropped", tracer.dropped())
                } else {
                    String::new()
                }
            )),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }

    /// Print prose output (suppressed under `--json` so the document
    /// stays parseable).
    pub fn say(&self, text: impl std::fmt::Display) {
        if !self.json() {
            println!("{text}");
        }
    }

    /// Collect a record into the bench document.
    pub fn record(&mut self, record: RunRecord) {
        self.records.push(record);
    }

    /// Records collected so far.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Attach an extra top-level key to the bench document (e.g. the
    /// Table I rows next to the raw records). Later keys win.
    pub fn attach(&mut self, key: impl Into<String>, value: Json) {
        self.extra.push((key.into(), value));
    }

    /// Wall-clock a host-side closure into a record labelled `label`
    /// (1 cycle = 1 ns, i.e. a 1 GHz reference clock). The record is
    /// returned — attach metrics, then pass it to
    /// [`BenchHarness::record`].
    pub fn host_record<T>(label: &str, f: impl FnOnce() -> T) -> (RunRecord, T) {
        let start = Instant::now();
        let value = f();
        let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let span = TimeSpan::new(Cycle(nanos), Frequency::ghz(1.0));
        let mut record = RunRecord::new(label, span);
        record.platform = "host".to_string();
        (record, value)
    }

    /// The versioned document all collected records serialise into.
    pub fn document(&self) -> Json {
        let mut doc = Json::obj()
            .with("bench", self.name)
            .with("version", RUN_RECORD_VERSION)
            .with(
                "records",
                Json::Arr(self.records.iter().map(RunRecord::to_json).collect()),
            );
        for (k, v) in &self.extra {
            doc = doc.with(k.as_str(), v.clone());
        }
        doc
    }

    /// Emit the document: print it under `--json`, and write it to
    /// `--out` (default `results/<bench>.json`) unless `--no-write`.
    pub fn finish(self) {
        let doc = self.document();
        if self.json() {
            print!("{}", doc.to_string_pretty());
        }
        if self.flag("no-write") {
            return;
        }
        let path = self.value("out").map_or_else(
            || PathBuf::from(RESULTS_DIR).join(format!("{}.json", self.name)),
            PathBuf::from,
        );
        if let Err(d) = check_overwrite(&path, self.flag("force")) {
            eprintln!("{d}");
            std::process::exit(2);
        }
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return;
            }
        }
        match std::fs::write(&path, doc.to_string_pretty()) {
            Ok(()) => self.say(format_args!("\nwrote {}", path.display())),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn flags_and_values_parse() {
        let h = BenchHarness::with_args("t", args(&["--small", "--json", "--out", "x.json"]));
        assert!(h.small() && h.json());
        assert_eq!(h.value("out"), Some("x.json"));
        assert_eq!(h.value("missing"), None);
        assert!(!h.flag("no-write"));
    }

    #[test]
    fn operand_distinguishes_missing_flag_from_missing_value() {
        let h = BenchHarness::with_args("t", args(&["--out", "x.json", "--trace", "--json"]));
        assert_eq!(h.operand("out").unwrap(), Some("x.json"));
        assert_eq!(h.operand("mapping").unwrap(), None);
        let err = h.operand("trace").unwrap_err();
        assert_eq!(err.code, "CLI002");
        let h = BenchHarness::with_args("t", args(&["--out"]));
        assert_eq!(h.operand("out").unwrap_err().code, "CLI002");
    }

    #[test]
    fn document_carries_name_version_and_records() {
        let mut h = BenchHarness::with_args("t", Vec::new());
        let span = TimeSpan::new(Cycle(10), Frequency::ghz(1.0));
        h.record(RunRecord::new("a", span));
        h.record(RunRecord::new("b", span));
        let doc = h.document();
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("t"));
        assert_eq!(
            doc.get("version").and_then(Json::as_u64),
            Some(u64::from(RUN_RECORD_VERSION))
        );
        assert_eq!(
            doc.get("records")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn attached_keys_land_in_the_document() {
        let mut h = BenchHarness::with_args("t", Vec::new());
        h.attach("table", Json::obj().with("rows", 3u64));
        let doc = h.document();
        assert_eq!(
            doc.get("table")
                .and_then(|t| t.get("rows"))
                .and_then(Json::as_u64),
            Some(3)
        );
    }

    #[test]
    fn check_overwrite_refuses_only_version_mismatches() {
        let dir = std::env::temp_dir().join(format!("harness-cli006-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Missing file: fine.
        assert!(check_overwrite(&dir.join("absent.json"), false).is_ok());
        // Same version: fine.
        let same = dir.join("same.json");
        std::fs::write(
            &same,
            Json::obj()
                .with("version", RUN_RECORD_VERSION)
                .to_string_pretty(),
        )
        .unwrap();
        assert!(check_overwrite(&same, false).is_ok());
        // Unidentifiable contents: fine (nothing to protect).
        let junk = dir.join("junk.json");
        std::fs::write(&junk, "not json at all").unwrap();
        assert!(check_overwrite(&junk, false).is_ok());
        // Version mismatch: CLI006 unless forced.
        let old = dir.join("old.json");
        std::fs::write(
            &old,
            Json::obj()
                .with("version", u64::from(RUN_RECORD_VERSION) + 1)
                .to_string_pretty(),
        )
        .unwrap();
        let err = check_overwrite(&old, false).unwrap_err();
        assert_eq!(err.code, "CLI006");
        assert!(err.message.contains("--force"));
        assert!(check_overwrite(&old, true).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn host_record_measures_wall_time() {
        let (r, sum) = BenchHarness::host_record("spin", || (0..1000u64).sum::<u64>());
        assert_eq!(sum, 499_500);
        assert_eq!(r.platform, "host");
        assert!(r.elapsed.cycles > Cycle::ZERO);
    }
}
