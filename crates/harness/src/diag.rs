//! Diagnostics shared by the static analyzer (`sarlint`) and the CLI
//! front ends: one coded finding plus the report that aggregates them.
//!
//! Codes are stable identifiers (`SL***` for analyzer findings,
//! `CLI***` for argument errors) so tests and CI can gate on *which*
//! invariant broke, not on message wording.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (e.g. "no model declared, checks vacuous").
    Note,
    /// Suspicious but not proven wrong; does not fail a gate.
    Warning,
    /// A proven invariant violation; fails the gate and refuses a run.
    Hard,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Hard => "error",
        })
    }
}

/// One coded finding about a mapping, a platform pair, or a command
/// line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`SL001`, `CLI001`, ...).
    pub code: &'static str,
    /// Gate behaviour.
    pub severity: Severity,
    /// What the finding is about (a buffer, a channel, a flag name).
    pub subject: String,
    /// Human-readable explanation naming the violated invariant.
    pub message: String,
}

impl Diagnostic {
    /// A gate-failing finding.
    pub fn hard(
        code: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Hard,
            subject: subject.into(),
            message: message.into(),
        }
    }

    /// A non-fatal finding.
    pub fn warning(
        code: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            subject: subject.into(),
            message: message.into(),
        }
    }

    /// An informational finding.
    pub fn note(
        code: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Note,
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.subject, self.message
        )
    }
}

/// Aggregated findings from one analysis pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every finding, in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Record a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Absorb another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Gate-failing findings.
    pub fn hard(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Hard)
    }

    /// Number of gate-failing findings.
    pub fn hard_count(&self) -> usize {
        self.hard().count()
    }

    /// Whether the gate passes (warnings and notes allowed).
    pub fn is_clean(&self) -> bool {
        self.hard_count() == 0
    }

    /// Whether some finding carries `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Sort findings by `(code, subject, severity, message)` and drop
    /// exact duplicates, so a rendered report is byte-stable no matter
    /// what order the analysis passes emitted in.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.code, &a.subject, a.severity, &a.message)
                .cmp(&(b.code, &b.subject, b.severity, &b.message))
        });
        self.diagnostics.dedup();
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Hard > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn report_gates_on_hard_findings_only() {
        let mut r = Report::new();
        r.push(Diagnostic::note("SL000", "m", "no model"));
        r.push(Diagnostic::warning("SL005", "ch", "2 hops"));
        assert!(r.is_clean());
        r.push(Diagnostic::hard("SL001", "buf", "overflows bank"));
        assert!(!r.is_clean());
        assert_eq!(r.hard_count(), 1);
        assert!(r.has_code("SL001") && !r.has_code("SL002"));
    }

    #[test]
    fn normalize_orders_by_code_then_subject_and_dedups() {
        let mut r = Report::new();
        r.push(Diagnostic::warning("SL005", "ch_b", "far"));
        r.push(Diagnostic::hard("SL001", "buf", "overflow"));
        r.push(Diagnostic::warning("SL005", "ch_a", "far"));
        r.push(Diagnostic::hard("SL001", "buf", "overflow")); // duplicate
        r.normalize();
        let order: Vec<_> = r
            .diagnostics
            .iter()
            .map(|d| (d.code, d.subject.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![("SL001", "buf"), ("SL005", "ch_a"), ("SL005", "ch_b")]
        );
    }

    #[test]
    fn display_carries_code_and_subject() {
        let d = Diagnostic::hard("SL003", "loop", "cycle a->b->a");
        let s = format!("{d}");
        assert!(s.contains("SL003") && s.contains("loop") && s.contains("error"));
    }
}
