//! The unified run harness (DESIGN.md §3 S12): every kernel × machine
//! pair in the repo runs through one entry point,
//! [`run`]`(mapping, workload, platform) -> `[`MappingRun`], and every
//! result is one serialisable [`desim::RunRecord`] with per-phase
//! observability.
//!
//! The three contracts:
//!
//! * [`Platform`] — a machine model (the Epiphany chip, the reference
//!   i7 core, the host's own threads) with its identity and datasheet
//!   power;
//! * [`Mapping`] — one way of running a kernel on a machine family
//!   (implementations live in `sar-epiphany`, next to their drivers);
//! * [`desim::RunRecord`] — the single result shape, stamped by [`run`]
//!   with the full kernel/mapping/platform identity.
//!
//! [`BenchHarness`] is the shared CLI runner the report binaries sit
//! on: common `--small`/`--json`/`--out` flags and one versioned JSON
//! document shape under `results/`.

#![forbid(unsafe_code)]

pub mod cli;
pub mod diag;
pub mod mapping;
pub mod model;
pub mod placement;
pub mod platform;
pub mod workload;

pub use cli::{check_overwrite, BenchHarness, RESULTS_DIR};
pub use desim::{PhaseRecord, RunRecord, RUN_RECORD_VERSION};
pub use diag::{Diagnostic, Report, Severity};
pub use faultsim::{FaultPlan, FaultState};
pub use mapping::{run, run_ctx, run_traced, HarnessError, Mapping, MappingRun, RunContext};
pub use model::{
    BarrierDecl, Bound, BufferDecl, ChannelDecl, FlagDecl, PhaseDecl, ProgramModel, TrafficDecl,
    WorkDecl,
};
pub use placement::Placement;
pub use platform::{
    all_platforms, platform_named, EpiphanyPlatform, HostPlatform, Platform, PlatformKind,
    RefCpuPlatform, EPIPHANY_POWER_W, INTEL_POWER_W,
};
pub use workload::{AutofocusWorkload, FfbpWorkload, RdaWorkload, Workload};
