//! Core placement for the 13-core autofocus pipeline mappings.
//!
//! A [`Placement`] names which core runs which pipeline stage. Ids are
//! written canonically for the 4-column E16G3 mesh (`id = y * 4 + x`);
//! [`Placement::rebased`] renumbers onto wider meshes while preserving
//! every core's `(x, y)` coordinate, so hop counts — and therefore the
//! mesh-energy profile — survive the move. The type lives in the
//! harness (not `sar-epiphany`) so [`RunContext`](crate::RunContext)
//! can carry a placement override and the `autotune` search engine can
//! manipulate placements without depending on the drivers.
//!
//! Placements round-trip through JSON (`{"version": 1, "range": ...,
//! "beam": ..., "corr": ...}`): [`Placement::to_json`] /
//! [`Placement::parse`], and [`Placement::resolve`] turns a
//! `--placement` operand — a literal name or `@path/to/file.json` —
//! into a placement or a `CLI003`/`CLI007` diagnostic.

use desim::Json;
use emesh::{Coord, Mesh2D};

use crate::diag::Diagnostic;

/// Columns of the canonical id space: placements are written row-major
/// for the 4-column E16G3 mesh and rebased onto wider meshes.
pub const CANONICAL_COLS: usize = 4;

/// Which core runs which pipeline stage. Indexing: `[block][instance]`
/// with block 0 = `f-`, block 1 = `f+`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Range-interpolator cores.
    pub range: [[usize; 3]; 2],
    /// Beam-interpolator cores.
    pub beam: [[usize; 3]; 2],
    /// Correlation/summation core.
    pub corr: usize,
}

impl Placement {
    /// The paper-style neighbour mapping on the 4x4 mesh: each block's
    /// range column feeds an adjacent beam column, and both beam
    /// columns sit next to the correlator.
    pub fn neighbor() -> Placement {
        // Node ids are row-major on the 4x4 mesh: id = y * 4 + x.
        Placement {
            range: [[0, 4, 8], [3, 7, 11]], // columns x=0 and x=3
            beam: [[1, 5, 9], [2, 6, 10]],  // columns x=1 and x=2
            corr: 13,                       // (x=1, y=3)
        }
    }

    /// A deliberately bad mapping (ablation): producers and consumers
    /// scattered to opposite corners.
    pub fn scattered() -> Placement {
        Placement {
            range: [[0, 10, 5], [15, 1, 12]],
            beam: [[14, 3, 8], [2, 13, 4]],
            corr: 7,
        }
    }

    /// Resolve a `--placement` name: `"neighbor"` or `"scattered"`.
    pub fn named(name: &str) -> Option<Placement> {
        match name {
            "neighbor" => Some(Placement::neighbor()),
            "scattered" => Some(Placement::scattered()),
            _ => None,
        }
    }

    /// Resolve a `--placement` operand: a literal name, or `@path` to
    /// load a placement JSON file. Unknown names are `CLI003`;
    /// unreadable, malformed or invalid files are `CLI007`.
    pub fn resolve(spec: &str) -> Result<Placement, Diagnostic> {
        if let Some(path) = spec.strip_prefix('@') {
            let subject = format!("--placement @{path}");
            let text = std::fs::read_to_string(path).map_err(|e| {
                Diagnostic::hard(
                    "CLI007",
                    subject.clone(),
                    format!("cannot read placement file: {e}"),
                )
            })?;
            Placement::parse(&text).map_err(|e| {
                Diagnostic::hard("CLI007", subject, format!("invalid placement file: {e}"))
            })
        } else {
            Placement::named(spec).ok_or_else(|| {
                Diagnostic::hard(
                    "CLI003",
                    format!("--placement {spec}"),
                    "unknown placement; expected 'neighbor', 'scattered' or '@path/to/placement.json'",
                )
            })
        }
    }

    /// The placement with every occurrence of `dead` replaced by
    /// `spare` — the spare-core remap recovery move. The stage shape
    /// is untouched; only the node id changes.
    #[must_use]
    pub fn remap(&self, dead: usize, spare: usize) -> Placement {
        let sub = |c: usize| if c == dead { spare } else { c };
        Placement {
            range: self.range.map(|col| col.map(sub)),
            beam: self.beam.map(|col| col.map(sub)),
            corr: sub(self.corr),
        }
    }

    /// `(x, y)` of a canonical placement id (4-column row-major).
    fn canonical_xy(c: usize) -> Coord {
        Coord {
            x: (c % CANONICAL_COLS) as u16,
            y: u16::try_from(c / CANONICAL_COLS)
                .expect("placement id fits the u16 coordinate space"),
        }
    }

    /// The placement re-expressed on a `(cols, rows)` mesh. Placement
    /// ids are canonically written row-major for the 4-column E16G3
    /// mesh; rebasing keeps every core's `(x, y)` coordinate — and
    /// therefore every producer-consumer hop count — while renumbering
    /// into the target mesh's row-major id space. Identity on a
    /// 4-column mesh.
    ///
    /// # Panics
    /// If a coordinate falls off the target mesh.
    #[must_use]
    pub fn rebased(&self, cols: u16, rows: u16) -> Placement {
        let mesh = Mesh2D::new(cols, rows);
        let sub = |c: usize| {
            let xy = Placement::canonical_xy(c);
            assert!(
                mesh.contains(xy),
                "placement core {c} at ({},{}) falls off a {cols}x{rows} mesh",
                xy.x,
                xy.y
            );
            mesh.node(xy).raw()
        };
        Placement {
            range: self.range.map(|col| col.map(sub)),
            beam: self.beam.map(|col| col.map(sub)),
            corr: sub(self.corr),
        }
    }

    /// Whether every core's canonical coordinate lies on a
    /// `(cols, rows)` mesh, i.e. [`Placement::rebased`] would succeed.
    pub fn fits(&self, cols: u16, rows: u16) -> bool {
        if cols == 0 || rows == 0 {
            return false;
        }
        let mesh = Mesh2D::new(cols, rows);
        self.cores()
            .iter()
            .all(|&c| mesh.contains(Placement::canonical_xy(c)))
    }

    /// All thirteen distinct cores.
    pub fn cores(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .range
            .iter()
            .chain(self.beam.iter())
            .flatten()
            .copied()
            .collect();
        v.push(self.corr);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Serialise to the placement-file JSON shape (canonical ids).
    pub fn to_json(&self) -> Json {
        let col = |c: &[usize; 3]| Json::from(c.iter().map(|&v| Json::from(v)).collect::<Vec<_>>());
        let pair = |p: &[[usize; 3]; 2]| Json::from(vec![col(&p[0]), col(&p[1])]);
        Json::obj()
            .with("version", 1u32)
            .with("range", pair(&self.range))
            .with("beam", pair(&self.beam))
            .with("corr", self.corr)
    }

    /// Parse the placement-file JSON shape produced by
    /// [`Placement::to_json`]. Rejects malformed documents, wrong
    /// shapes, and assignments that do not use 13 distinct cores.
    pub fn parse(text: &str) -> Result<Placement, String> {
        let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
        Placement::from_json(&doc)
    }

    /// [`Placement::parse`] for an already-parsed document.
    pub fn from_json(doc: &Json) -> Result<Placement, String> {
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("missing integer field 'version'")?;
        if version != 1 {
            return Err(format!(
                "unsupported placement version {version} (expected 1)"
            ));
        }
        let id = |v: &Json, what: &str| -> Result<usize, String> {
            let raw = v
                .as_u64()
                .ok_or_else(|| format!("{what} must be a non-negative integer"))?;
            usize::try_from(raw).map_err(|_| format!("{what} does not fit a core id"))
        };
        let stage = |key: &str| -> Result<[[usize; 3]; 2], String> {
            let blocks = doc
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("missing array field '{key}'"))?;
            if blocks.len() != 2 {
                return Err(format!("'{key}' must have 2 blocks, got {}", blocks.len()));
            }
            let mut out = [[0usize; 3]; 2];
            for (bi, block) in blocks.iter().enumerate() {
                let cores = block
                    .as_array()
                    .ok_or_else(|| format!("'{key}[{bi}]' must be an array"))?;
                if cores.len() != 3 {
                    return Err(format!(
                        "'{key}[{bi}]' must have 3 cores, got {}",
                        cores.len()
                    ));
                }
                for (ci, core) in cores.iter().enumerate() {
                    out[bi][ci] = id(core, &format!("'{key}[{bi}][{ci}]'"))?;
                }
            }
            Ok(out)
        };
        let place = Placement {
            range: stage("range")?,
            beam: stage("beam")?,
            corr: id(doc.get("corr").unwrap_or(&Json::Null), "'corr'")?,
        };
        if place.cores().len() != 13 {
            return Err(format!(
                "placement must use 13 distinct cores, got {}",
                place.cores().len()
            ));
        }
        Ok(place)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_resolves_both_hand_placements() {
        assert_eq!(Placement::named("neighbor"), Some(Placement::neighbor()));
        assert_eq!(Placement::named("scattered"), Some(Placement::scattered()));
        assert_eq!(Placement::named("bogus"), None);
    }

    #[test]
    fn json_round_trips_the_hand_placements() {
        for p in [Placement::neighbor(), Placement::scattered()] {
            let text = p.to_json().to_string_pretty();
            assert_eq!(Placement::parse(&text), Ok(p));
        }
    }

    #[test]
    fn parse_rejects_duplicate_cores_and_bad_shapes() {
        let mut dup = Placement::neighbor();
        dup.corr = dup.range[0][0];
        let text = dup.to_json().to_string_pretty();
        assert!(Placement::parse(&text).unwrap_err().contains("13 distinct"));
        assert!(Placement::parse("not json").unwrap_err().contains("JSON"));
        assert!(Placement::parse("{\"version\": 2}")
            .unwrap_err()
            .contains("version"));
        assert!(Placement::parse(
            "{\"version\": 1, \"range\": [[0,1,2]], \"beam\": [[3,4,5],[6,7,8]], \"corr\": 9}"
        )
        .unwrap_err()
        .contains("2 blocks"));
    }

    #[test]
    fn fits_tracks_the_canonical_coordinates() {
        assert!(Placement::neighbor().fits(4, 4));
        assert!(Placement::neighbor().fits(8, 8));
        // Core 15 sits at (3, 3): off a 4x3 mesh.
        assert!(!Placement::scattered().fits(4, 3));
    }

    #[test]
    fn resolve_distinguishes_unknown_names_from_bad_files() {
        assert_eq!(Placement::resolve("neighbor"), Ok(Placement::neighbor()));
        assert_eq!(Placement::resolve("bogus").unwrap_err().code, "CLI003");
        assert_eq!(
            Placement::resolve("@/nonexistent/placement.json")
                .unwrap_err()
                .code,
            "CLI007"
        );
    }
}
