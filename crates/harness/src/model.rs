//! The declarative side of a mapping: what it *claims* about memory,
//! communication and synchronisation, checkable without running the
//! simulation (DESIGN.md §3 S14).
//!
//! A [`ProgramModel`] is exported by [`crate::Mapping::program_model`]
//! and consumed by the `sarlint` analyzer: per-core buffer allocations
//! against the local-store banks, the streaming channel graph, flag
//! set/wait sites and barrier membership. The model describes one
//! steady-state round of the mapping (one merge iteration, one
//! hypothesis) — the analyzer's invariants are all per-round.

use desim::OpCounts;

/// An inclusive numeric interval `[lo, hi]` — the declaration language
/// of the static cost model (DESIGN.md §3 S19). Everything a mapping
/// cannot pin exactly (data-dependent off-chip misses, poll counts) is
/// declared as a bound; everything it can is declared with `exact`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Bound {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Inclusive upper edge.
    pub hi: f64,
}

impl Bound {
    /// A degenerate interval `[v, v]`.
    pub fn exact(v: f64) -> Bound {
        Bound { lo: v, hi: v }
    }

    /// The interval `[lo, hi]`.
    pub fn range(lo: f64, hi: f64) -> Bound {
        Bound { lo, hi }
    }

    /// The additive identity `[0, 0]`.
    pub fn zero() -> Bound {
        Bound::default()
    }

    /// Both edges scaled by a non-negative factor.
    pub fn scaled(self, k: f64) -> Bound {
        Bound {
            lo: self.lo * k,
            hi: self.hi * k,
        }
    }

    /// Whether `v` falls inside the interval, with a small relative
    /// slack so float round-off on the edges does not flip a verdict.
    pub fn contains(&self, v: f64) -> bool {
        let slack = 1e-9 * self.hi.abs().max(v.abs()).max(1.0);
        self.lo - slack <= v && v <= self.hi + slack
    }

    /// Midpoint of the interval.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Interval sum: both edges added independently.
impl std::ops::Add for Bound {
    type Output = Bound;

    fn add(self, other: Bound) -> Bound {
        Bound {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

impl std::ops::AddAssign for Bound {
    fn add_assign(&mut self, other: Bound) {
        *self = *self + other;
    }
}

/// One core's declared work per round of a phase: compute op counts
/// (as a `[lo, hi]` pair of [`OpCounts`]) plus the off-chip and
/// synchronisation traffic the core itself initiates. On-chip
/// core-to-core traffic lives in [`TrafficDecl`], not here.
#[derive(Debug, Clone, Default)]
pub struct WorkDecl {
    /// Row-major node id of the core doing the work.
    pub core: usize,
    /// Lower edge of the per-round op counts.
    pub ops_lo: OpCounts,
    /// Upper edge of the per-round op counts.
    pub ops_hi: OpCounts,
    /// `compute()` invocations per round (ceil-granularity slack in
    /// the cycle model accrues per call).
    pub compute_calls: Bound,
    /// Flag waits per round (each costs between 1 and 64 polls).
    pub flag_waits: Bound,
    /// Off-chip read payload bytes per round.
    pub ext_read_bytes: Bound,
    /// Off-chip read transactions per round.
    pub ext_read_msgs: Bound,
    /// Off-chip write payload bytes per round.
    pub ext_write_bytes: Bound,
    /// Off-chip write transactions per round.
    pub ext_write_msgs: Bound,
    /// DMA payload bytes (external -> local) per round.
    pub dma_bytes: Bound,
    /// DMA transfers per round.
    pub dma_msgs: Bound,
    /// Reference-CPU demand memory accesses (cache-line touches) per
    /// round; ignored by the Epiphany model.
    pub mem_accesses: Bound,
}

impl WorkDecl {
    /// An all-zero declaration for `core`.
    pub fn new(core: usize) -> WorkDecl {
        WorkDecl {
            core,
            ..WorkDecl::default()
        }
    }

    /// Declare the op counts exactly (lower = upper = `ops`).
    pub fn exact_ops(&mut self, ops: OpCounts) {
        self.ops_lo = ops;
        self.ops_hi = ops;
    }
}

/// Declared on-chip traffic over one directed core pair per round:
/// posted remote writes (including reliable sends), which the mesh
/// routes X-first-then-Y.
#[derive(Debug, Clone, Default)]
pub struct TrafficDecl {
    /// Producing core (row-major node id).
    pub from: usize,
    /// Consuming core.
    pub to: usize,
    /// Messages per round.
    pub messages: Bound,
    /// Total payload bytes per round (headers are the model's job).
    pub bytes: Bound,
}

/// One phase of the mapping's execution: `rounds` repetitions of the
/// declared per-core work, on-chip traffic and barriers. Phases run
/// back to back, so per-phase bounds sum to run bounds.
#[derive(Debug, Clone, Default)]
pub struct PhaseDecl {
    /// Phase name, matching the driver's `phase_begin` label.
    pub name: String,
    /// How many rounds the phase executes.
    pub rounds: u64,
    /// Per-core work per round.
    pub work: Vec<WorkDecl>,
    /// On-chip traffic per round.
    pub traffic: Vec<TrafficDecl>,
    /// Barriers per round (all declared cores participate).
    pub barriers: u64,
}

/// One live buffer in a core's local store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferDecl {
    /// What the buffer holds (e.g. `"child_beam_a"`).
    pub label: String,
    /// Owning core (row-major node id).
    pub core: usize,
    /// Local-store bank the buffer lives in.
    pub bank: usize,
    /// Byte offset within the bank.
    pub offset: u32,
    /// Buffer size in bytes.
    pub bytes: u32,
}

/// One streaming channel of the pipeline graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelDecl {
    /// Channel name (e.g. `"range00->beam01"`).
    pub label: String,
    /// Producing core.
    pub from: usize,
    /// Consuming core.
    pub to: usize,
    /// Buffering credits available on the consumer side (tokens the
    /// producer may post before the consumer drains).
    pub capacity_tokens: u32,
    /// Tokens one producer firing posts into the channel.
    pub tokens_per_firing: u32,
    /// Declared fault-recovery policy (e.g. `"retry_backoff"`,
    /// `"drain_restart"`). `None` means the channel has no recovery
    /// story — the `sarlint` SL011 check flags it.
    pub recovery: Option<String>,
}

/// One flag-synchronisation site: `setter` posts data and sets the
/// flag, `waiter` polls it. `sets`/`waits` count events per round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagDecl {
    /// Flag name (e.g. `"r00->b01.ready"`).
    pub label: String,
    /// Core that sets the flag.
    pub setter: usize,
    /// Core that waits on it.
    pub waiter: usize,
    /// Sets per round.
    pub sets: u64,
    /// Waits per round.
    pub waits: u64,
    /// Declared fault-recovery policy (e.g. `"checkpoint_restart"`).
    /// `None` means a lost flag write hangs the waiter forever — the
    /// `sarlint` SL012 check flags it.
    pub recovery: Option<String>,
}

/// One barrier: which cores the algorithm assumes participate, and
/// which cores actually arrive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierDecl {
    /// Barrier name (e.g. `"merge_end"`).
    pub label: String,
    /// Cores the release condition counts.
    pub participants: Vec<usize>,
    /// Cores that reach the barrier each round.
    pub arrivals: Vec<usize>,
}

/// Everything a mapping declares about itself.
#[derive(Debug, Clone, Default)]
pub struct ProgramModel {
    /// Mesh geometry `(cols, rows)` the placement targets.
    pub mesh: (u16, u16),
    /// Cores the mapping occupies (row-major node ids).
    pub cores: Vec<usize>,
    /// Live local-store buffers.
    pub buffers: Vec<BufferDecl>,
    /// The streaming channel graph.
    pub channels: Vec<ChannelDecl>,
    /// Flag set/wait sites.
    pub flags: Vec<FlagDecl>,
    /// Barriers.
    pub barriers: Vec<BarrierDecl>,
    /// Per-phase workload declarations for the static cost model.
    /// Empty means "structure only": the capacity/deadlock checks
    /// still run but cost bounds are unavailable.
    pub workload: Vec<PhaseDecl>,
    /// Dual-issue pairing efficiency override for the cost model's
    /// cycle lowering; `None` means the platform default.
    pub pairing_efficiency: Option<f64>,
    /// Sustained-IPC override for reference-CPU cost lowering; `None`
    /// means the platform default.
    pub sustained_ipc: Option<f64>,
}

impl ProgramModel {
    /// An empty model on a `(cols, rows)` mesh.
    pub fn new(cols: u16, rows: u16) -> ProgramModel {
        ProgramModel {
            mesh: (cols, rows),
            ..ProgramModel::default()
        }
    }

    /// Declare a buffer.
    pub fn buffer(
        &mut self,
        label: impl Into<String>,
        core: usize,
        bank: usize,
        offset: u32,
        bytes: u32,
    ) {
        self.buffers.push(BufferDecl {
            label: label.into(),
            core,
            bank,
            offset,
            bytes,
        });
    }

    /// Declare a channel, with a matching one-set/one-wait flag (the
    /// flag-signalled posted-write protocol every streaming channel in
    /// the repo uses).
    pub fn channel(&mut self, label: impl Into<String>, from: usize, to: usize) {
        let label = label.into();
        self.flags.push(FlagDecl {
            label: format!("{label}.ready"),
            setter: from,
            waiter: to,
            sets: 1,
            waits: 1,
            recovery: None,
        });
        self.channels.push(ChannelDecl {
            label,
            from,
            to,
            capacity_tokens: 1,
            tokens_per_firing: 1,
            recovery: None,
        });
    }

    /// Declare the fault-recovery policy for every channel and flag
    /// whose label starts with `prefix` (a channel's protocol flag
    /// shares the channel's label, so one call covers both). Returns
    /// how many declarations matched.
    pub fn declare_recovery(&mut self, prefix: &str, policy: &str) -> usize {
        let mut matched = 0;
        for c in self
            .channels
            .iter_mut()
            .filter(|c| c.label.starts_with(prefix))
        {
            c.recovery = Some(policy.to_string());
            matched += 1;
        }
        for f in self
            .flags
            .iter_mut()
            .filter(|f| f.label.starts_with(prefix))
        {
            f.recovery = Some(policy.to_string());
            matched += 1;
        }
        matched
    }

    /// Declare a workload phase and return it for filling in.
    pub fn phase(&mut self, name: impl Into<String>, rounds: u64) -> &mut PhaseDecl {
        self.workload.push(PhaseDecl {
            name: name.into(),
            rounds,
            ..PhaseDecl::default()
        });
        self.workload.last_mut().expect("just pushed")
    }

    /// Whether the model carries workload declarations (cost bounds
    /// are only available when it does).
    pub fn has_workload(&self) -> bool {
        !self.workload.is_empty()
    }

    /// The mesh geometry as an [`emesh::Mesh2D`] — the shared source
    /// of truth for all coordinate/hop arithmetic.
    pub fn mesh2d(&self) -> emesh::Mesh2D {
        emesh::Mesh2D::new(self.mesh.0.max(1), self.mesh.1.max(1))
    }

    /// `(x, y)` mesh coordinates of row-major node `core`.
    ///
    /// # Panics
    /// If `core` is off the mesh (callers gate on mesh membership
    /// first; see the `SL005` off-mesh check).
    pub fn node_xy(&self, core: usize) -> (u16, u16) {
        self.mesh2d().xy(core)
    }

    /// Manhattan distance between two cores on the mesh — the XY-routed
    /// hop count, delegated to [`emesh::Mesh2D::hops`] so the program
    /// model, the placement lint and the cost model can never disagree.
    ///
    /// # Panics
    /// If either core is off the mesh.
    pub fn manhattan(&self, a: usize, b: usize) -> u16 {
        self.mesh2d().hops(a, b)
    }

    /// Dimension-ordered XY route legs `(|dx|, |dy|)` between two
    /// cores, delegated to [`emesh::Mesh2D::xy_legs`].
    ///
    /// # Panics
    /// If either core is off the mesh.
    pub fn xy_legs(&self, a: usize, b: usize) -> (u16, u16) {
        self.mesh2d().xy_legs(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_are_row_major() {
        let m = ProgramModel::new(4, 4);
        assert_eq!(m.node_xy(0), (0, 0));
        assert_eq!(m.node_xy(5), (1, 1));
        assert_eq!(m.node_xy(13), (1, 3));
        assert_eq!(m.manhattan(0, 5), 2);
        assert_eq!(m.manhattan(0, 15), 6);
        assert_eq!(m.manhattan(9, 9), 0);
    }

    #[test]
    fn channel_declares_its_protocol_flag() {
        let mut m = ProgramModel::new(4, 4);
        m.channel("a->b", 1, 2);
        assert_eq!(m.channels.len(), 1);
        assert_eq!(m.flags.len(), 1);
        let f = &m.flags[0];
        assert_eq!((f.setter, f.waiter), (1, 2));
        assert_eq!((f.sets, f.waits), (1, 1));
        assert!(f.label.ends_with(".ready"));
        assert_eq!(f.recovery, None, "recovery is an explicit declaration");
    }

    #[test]
    fn declare_recovery_covers_channel_and_protocol_flag() {
        let mut m = ProgramModel::new(4, 4);
        m.channel("range00->beam01", 0, 1);
        m.channel("range02->beam03", 2, 3);
        // One channel + its .ready flag match the full-label prefix.
        assert_eq!(m.declare_recovery("range00->beam01", "retry_backoff"), 2);
        assert_eq!(m.channels[0].recovery.as_deref(), Some("retry_backoff"));
        assert_eq!(m.flags[0].recovery.as_deref(), Some("retry_backoff"));
        assert_eq!(m.channels[1].recovery, None);
        // A shared prefix covers the rest in one declaration.
        assert_eq!(m.declare_recovery("range", "drain_restart"), 4);
        assert_eq!(m.channels[1].recovery.as_deref(), Some("drain_restart"));
        // No match, no effect.
        assert_eq!(m.declare_recovery("nope", "x"), 0);
    }
}
