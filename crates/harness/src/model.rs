//! The declarative side of a mapping: what it *claims* about memory,
//! communication and synchronisation, checkable without running the
//! simulation (DESIGN.md §3 S14).
//!
//! A [`ProgramModel`] is exported by [`crate::Mapping::program_model`]
//! and consumed by the `sarlint` analyzer: per-core buffer allocations
//! against the local-store banks, the streaming channel graph, flag
//! set/wait sites and barrier membership. The model describes one
//! steady-state round of the mapping (one merge iteration, one
//! hypothesis) — the analyzer's invariants are all per-round.

/// One live buffer in a core's local store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferDecl {
    /// What the buffer holds (e.g. `"child_beam_a"`).
    pub label: String,
    /// Owning core (row-major node id).
    pub core: usize,
    /// Local-store bank the buffer lives in.
    pub bank: usize,
    /// Byte offset within the bank.
    pub offset: u32,
    /// Buffer size in bytes.
    pub bytes: u32,
}

/// One streaming channel of the pipeline graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelDecl {
    /// Channel name (e.g. `"range00->beam01"`).
    pub label: String,
    /// Producing core.
    pub from: usize,
    /// Consuming core.
    pub to: usize,
    /// Buffering credits available on the consumer side (tokens the
    /// producer may post before the consumer drains).
    pub capacity_tokens: u32,
    /// Tokens one producer firing posts into the channel.
    pub tokens_per_firing: u32,
    /// Declared fault-recovery policy (e.g. `"retry_backoff"`,
    /// `"drain_restart"`). `None` means the channel has no recovery
    /// story — the `sarlint` SL011 check flags it.
    pub recovery: Option<String>,
}

/// One flag-synchronisation site: `setter` posts data and sets the
/// flag, `waiter` polls it. `sets`/`waits` count events per round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagDecl {
    /// Flag name (e.g. `"r00->b01.ready"`).
    pub label: String,
    /// Core that sets the flag.
    pub setter: usize,
    /// Core that waits on it.
    pub waiter: usize,
    /// Sets per round.
    pub sets: u64,
    /// Waits per round.
    pub waits: u64,
    /// Declared fault-recovery policy (e.g. `"checkpoint_restart"`).
    /// `None` means a lost flag write hangs the waiter forever — the
    /// `sarlint` SL012 check flags it.
    pub recovery: Option<String>,
}

/// One barrier: which cores the algorithm assumes participate, and
/// which cores actually arrive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierDecl {
    /// Barrier name (e.g. `"merge_end"`).
    pub label: String,
    /// Cores the release condition counts.
    pub participants: Vec<usize>,
    /// Cores that reach the barrier each round.
    pub arrivals: Vec<usize>,
}

/// Everything a mapping declares about itself.
#[derive(Debug, Clone, Default)]
pub struct ProgramModel {
    /// Mesh geometry `(cols, rows)` the placement targets.
    pub mesh: (u16, u16),
    /// Cores the mapping occupies (row-major node ids).
    pub cores: Vec<usize>,
    /// Live local-store buffers.
    pub buffers: Vec<BufferDecl>,
    /// The streaming channel graph.
    pub channels: Vec<ChannelDecl>,
    /// Flag set/wait sites.
    pub flags: Vec<FlagDecl>,
    /// Barriers.
    pub barriers: Vec<BarrierDecl>,
}

impl ProgramModel {
    /// An empty model on a `(cols, rows)` mesh.
    pub fn new(cols: u16, rows: u16) -> ProgramModel {
        ProgramModel {
            mesh: (cols, rows),
            ..ProgramModel::default()
        }
    }

    /// Declare a buffer.
    pub fn buffer(
        &mut self,
        label: impl Into<String>,
        core: usize,
        bank: usize,
        offset: u32,
        bytes: u32,
    ) {
        self.buffers.push(BufferDecl {
            label: label.into(),
            core,
            bank,
            offset,
            bytes,
        });
    }

    /// Declare a channel, with a matching one-set/one-wait flag (the
    /// flag-signalled posted-write protocol every streaming channel in
    /// the repo uses).
    pub fn channel(&mut self, label: impl Into<String>, from: usize, to: usize) {
        let label = label.into();
        self.flags.push(FlagDecl {
            label: format!("{label}.ready"),
            setter: from,
            waiter: to,
            sets: 1,
            waits: 1,
            recovery: None,
        });
        self.channels.push(ChannelDecl {
            label,
            from,
            to,
            capacity_tokens: 1,
            tokens_per_firing: 1,
            recovery: None,
        });
    }

    /// Declare the fault-recovery policy for every channel and flag
    /// whose label starts with `prefix` (a channel's protocol flag
    /// shares the channel's label, so one call covers both). Returns
    /// how many declarations matched.
    pub fn declare_recovery(&mut self, prefix: &str, policy: &str) -> usize {
        let mut matched = 0;
        for c in self
            .channels
            .iter_mut()
            .filter(|c| c.label.starts_with(prefix))
        {
            c.recovery = Some(policy.to_string());
            matched += 1;
        }
        for f in self
            .flags
            .iter_mut()
            .filter(|f| f.label.starts_with(prefix))
        {
            f.recovery = Some(policy.to_string());
            matched += 1;
        }
        matched
    }

    /// `(x, y)` mesh coordinates of row-major node `core`.
    pub fn node_xy(&self, core: usize) -> (u16, u16) {
        let cols = self.mesh.0.max(1) as usize;
        ((core % cols) as u16, (core / cols) as u16)
    }

    /// Manhattan distance between two cores on the mesh.
    pub fn manhattan(&self, a: usize, b: usize) -> u16 {
        let (ax, ay) = self.node_xy(a);
        let (bx, by) = self.node_xy(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_are_row_major() {
        let m = ProgramModel::new(4, 4);
        assert_eq!(m.node_xy(0), (0, 0));
        assert_eq!(m.node_xy(5), (1, 1));
        assert_eq!(m.node_xy(13), (1, 3));
        assert_eq!(m.manhattan(0, 5), 2);
        assert_eq!(m.manhattan(0, 15), 6);
        assert_eq!(m.manhattan(9, 9), 0);
    }

    #[test]
    fn channel_declares_its_protocol_flag() {
        let mut m = ProgramModel::new(4, 4);
        m.channel("a->b", 1, 2);
        assert_eq!(m.channels.len(), 1);
        assert_eq!(m.flags.len(), 1);
        let f = &m.flags[0];
        assert_eq!((f.setter, f.waiter), (1, 2));
        assert_eq!((f.sets, f.waits), (1, 1));
        assert!(f.label.ends_with(".ready"));
        assert_eq!(f.recovery, None, "recovery is an explicit declaration");
    }

    #[test]
    fn declare_recovery_covers_channel_and_protocol_flag() {
        let mut m = ProgramModel::new(4, 4);
        m.channel("range00->beam01", 0, 1);
        m.channel("range02->beam03", 2, 3);
        // One channel + its .ready flag match the full-label prefix.
        assert_eq!(m.declare_recovery("range00->beam01", "retry_backoff"), 2);
        assert_eq!(m.channels[0].recovery.as_deref(), Some("retry_backoff"));
        assert_eq!(m.flags[0].recovery.as_deref(), Some("retry_backoff"));
        assert_eq!(m.channels[1].recovery, None);
        // A shared prefix covers the rest in one declaration.
        assert_eq!(m.declare_recovery("range", "drain_restart"), 4);
        assert_eq!(m.channels[1].recovery.as_deref(), Some("drain_restart"));
        // No match, no effect.
        assert_eq!(m.declare_recovery("nope", "x"), 0);
    }
}
