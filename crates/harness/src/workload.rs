//! Workload definitions shared by every mapping × platform pair, plus
//! the registry the unified runner resolves `--workload` names against.

use sar_core::autofocus::{AutofocusConfig, Block6};
use sar_core::ffbp::FfbpConfig;
use sar_core::geometry::SarGeometry;
use sar_core::image::ComplexImage;
use sar_core::rda::RdaConfig;
use sar_core::scene::{simulate_compressed_data, simulate_raw_echoes, Scene};
use sar_core::signal::ChirpParams;

/// The FFBP workload: pulse-compressed data plus algorithm settings.
#[derive(Clone)]
pub struct FfbpWorkload {
    /// Collection geometry.
    pub geom: SarGeometry,
    /// Pulse-compressed input (rows = pulses).
    pub data: ComplexImage,
    /// Algorithm configuration (the paper: NN interpolation, base 2).
    pub config: FfbpConfig,
}

impl FfbpWorkload {
    /// The paper's workload: six targets, 1024 pulses x 1001 bins,
    /// merge base 2, nearest-neighbour interpolation.
    pub fn paper() -> FfbpWorkload {
        let geom = SarGeometry::paper_size();
        let scene = Scene::six_targets(geom);
        FfbpWorkload {
            geom,
            data: simulate_compressed_data(&scene, 0.0, 7),
            config: FfbpConfig::default(),
        }
    }

    /// A small workload for tests (64 pulses x 129 bins).
    pub fn small() -> FfbpWorkload {
        let geom = SarGeometry::test_size();
        let scene = Scene::six_targets(geom);
        FfbpWorkload {
            geom,
            data: simulate_compressed_data(&scene, 0.0, 7),
            config: FfbpConfig::default(),
        }
    }

    /// Pixels in the output image.
    pub fn pixels(&self) -> u64 {
        self.geom.num_pulses as u64 * self.geom.num_bins as u64
    }
}

/// The RDA workload: raw (uncompressed) echoes plus algorithm
/// settings. Rows of `raw` are pulses; each row carries `num_bins +
/// chirp.samples` fast-time samples.
#[derive(Clone)]
pub struct RdaWorkload {
    /// Collection geometry.
    pub geom: SarGeometry,
    /// Raw echo matrix (rows = pulses).
    pub raw: ComplexImage,
    /// Algorithm configuration (chirp, RCMC on/off).
    pub config: RdaConfig,
}

impl RdaWorkload {
    /// The paper-scale workload: the same six-target scene FFBP images,
    /// but as raw echoes (1024 pulses x 1129 fast-time samples).
    pub fn paper() -> RdaWorkload {
        let geom = SarGeometry::paper_size();
        let scene = Scene::six_targets(geom);
        let config = RdaConfig {
            chirp: ChirpParams {
                samples: 128,
                fractional_bandwidth: 0.9,
            },
            rcmc: true,
        };
        RdaWorkload {
            geom,
            raw: simulate_raw_echoes(&scene, config.chirp),
            config,
        }
    }

    /// A small workload for tests (64 pulses x 193 fast-time samples).
    pub fn small() -> RdaWorkload {
        let geom = SarGeometry::test_size();
        let scene = Scene::six_targets(geom);
        let config = RdaConfig {
            chirp: ChirpParams {
                samples: 64,
                fractional_bandwidth: 0.9,
            },
            rcmc: true,
        };
        RdaWorkload {
            geom,
            raw: simulate_raw_echoes(&scene, config.chirp),
            config,
        }
    }

    /// Pixels in the output image.
    pub fn pixels(&self) -> u64 {
        self.geom.num_pulses as u64 * self.geom.num_bins as u64
    }
}

/// The autofocus workload: two 6x6 blocks and the hypothesis sweep the
/// criterion is evaluated over.
#[derive(Clone)]
pub struct AutofocusWorkload {
    /// Block from the trailing contributing image.
    pub f_minus: Block6,
    /// Block from the leading contributing image.
    pub f_plus: Block6,
    /// Criterion parameters.
    pub config: AutofocusConfig,
    /// Number of candidate compensations tested per merge.
    pub hypotheses: usize,
    /// Largest tested shift (pixels).
    pub max_shift: f32,
    /// The path error baked into the block pair (for validation).
    pub true_shift: f32,
}

impl AutofocusWorkload {
    /// The paper-scale workload: a smooth target pair displaced by a
    /// known sub-pixel path error, 24 candidate compensations.
    pub fn paper() -> AutofocusWorkload {
        let truth = 0.4;
        AutofocusWorkload {
            f_minus: Block6::gaussian_blob(0.0, truth / 2.0),
            f_plus: Block6::gaussian_blob(0.0, -truth / 2.0),
            config: AutofocusConfig::default(),
            hypotheses: 24,
            max_shift: 1.0,
            true_shift: truth,
        }
    }

    /// A reduced sweep for tests.
    pub fn small() -> AutofocusWorkload {
        AutofocusWorkload {
            hypotheses: 5,
            ..AutofocusWorkload::paper()
        }
    }

    /// The tested compensation for hypothesis `h` of `self.hypotheses`.
    pub fn shift(&self, h: usize) -> f32 {
        -self.max_shift + 2.0 * self.max_shift * h as f32 / (self.hypotheses - 1) as f32
    }

    /// Pixels the criterion is computed on (the Table I throughput
    /// denominator: one 6x6 block pair = 36 output pixels).
    pub fn pixels(&self) -> u64 {
        36
    }
}

/// A kernel input a mapping can be handed: the sum over the two paper
/// kernels. Mappings match on the variant for their kernel and reject
/// the other via [`crate::HarnessError::KernelMismatch`].
// Both payloads are heavyweight and the enum only crosses APIs by
// reference, so boxing the large variant would add indirection for no
// saved copies.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum Workload {
    /// Image formation input (back-projection family).
    Ffbp(FfbpWorkload),
    /// Image formation input (range–Doppler family).
    Rda(RdaWorkload),
    /// Autofocus criterion input.
    Autofocus(AutofocusWorkload),
}

impl Workload {
    /// Kernel identity, as stamped into records.
    pub fn kernel(&self) -> &'static str {
        match self {
            Workload::Ffbp(_) => "ffbp",
            Workload::Rda(_) => "rda",
            Workload::Autofocus(_) => "autofocus",
        }
    }

    /// The FFBP input, if that is the variant.
    pub fn ffbp(&self) -> Option<&FfbpWorkload> {
        match self {
            Workload::Ffbp(w) => Some(w),
            _ => None,
        }
    }

    /// The RDA input, if that is the variant.
    pub fn rda(&self) -> Option<&RdaWorkload> {
        match self {
            Workload::Rda(w) => Some(w),
            _ => None,
        }
    }

    /// The autofocus input, if that is the variant.
    pub fn autofocus(&self) -> Option<&AutofocusWorkload> {
        match self {
            Workload::Autofocus(w) => Some(w),
            _ => None,
        }
    }

    /// Output pixels (the throughput denominator).
    pub fn pixels(&self) -> u64 {
        match self {
            Workload::Ffbp(w) => w.pixels(),
            Workload::Rda(w) => w.pixels(),
            Workload::Autofocus(w) => w.pixels(),
        }
    }

    /// Resolve a `--workload` name at either scale. Names are the
    /// kernel identities: `"ffbp"`, `"rda"` and `"autofocus"`.
    pub fn named(kernel: &str, small: bool) -> Option<Workload> {
        match (kernel, small) {
            ("ffbp", true) => Some(Workload::Ffbp(FfbpWorkload::small())),
            ("ffbp", false) => Some(Workload::Ffbp(FfbpWorkload::paper())),
            ("rda", true) => Some(Workload::Rda(RdaWorkload::small())),
            ("rda", false) => Some(Workload::Rda(RdaWorkload::paper())),
            ("autofocus", true) => Some(Workload::Autofocus(AutofocusWorkload::small())),
            ("autofocus", false) => Some(Workload::Autofocus(AutofocusWorkload::paper())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ffbp_matches_table_dimensions() {
        let w = FfbpWorkload::paper();
        assert_eq!(w.data.rows(), 1024);
        assert_eq!(w.data.cols(), 1001);
        assert_eq!(w.pixels(), 1024 * 1001);
    }

    #[test]
    fn autofocus_workload_is_consistent() {
        let w = AutofocusWorkload::paper();
        assert_eq!(w.pixels(), 36);
        assert!(w.hypotheses >= 2);
        assert!(w.true_shift.abs() <= w.max_shift);
        assert!(w.f_minus.energy() > 0.0);
        assert_eq!(w.shift(0), -w.max_shift);
        assert_eq!(w.shift(w.hypotheses - 1), w.max_shift);
    }

    #[test]
    fn small_rda_raw_matrix_has_chirp_padding() {
        let w = RdaWorkload::small();
        assert_eq!(w.raw.rows(), w.geom.num_pulses);
        assert_eq!(w.raw.cols(), w.geom.num_bins + w.config.chirp.samples);
        assert!(w.raw.energy() > 0.0);
    }

    #[test]
    fn registry_resolves_every_kernel() {
        let w = Workload::named("ffbp", true).expect("ffbp resolves");
        assert_eq!(w.kernel(), "ffbp");
        assert!(w.ffbp().is_some() && w.autofocus().is_none() && w.rda().is_none());
        let w = Workload::named("rda", true).expect("rda resolves");
        assert_eq!(w.kernel(), "rda");
        assert!(w.rda().is_some() && w.ffbp().is_none());
        let w = Workload::named("autofocus", false).expect("autofocus resolves");
        assert_eq!(w.kernel(), "autofocus");
        assert!(w.autofocus().is_some());
        assert!(Workload::named("sift", true).is_none());
    }
}
