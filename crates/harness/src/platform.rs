//! The machine side of the harness: every machine model the repo can
//! price a kernel on, behind one object-safe trait.

use epiphany::EpiphanyParams;
use refcpu::RefCpuParams;

/// Datasheet power of one i7-M620 core, watts (the paper's figure).
pub const INTEL_POWER_W: f64 = 17.5;
/// Datasheet power of the Epiphany E16G3 chip, watts.
pub const EPIPHANY_POWER_W: f64 = 2.0;

/// The machine families a mapping can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// The Epiphany chip model ([`epiphany::Chip`]).
    Epiphany,
    /// The reference uniprocessor model ([`refcpu::RefCpu`]).
    RefCpu,
    /// The host machine itself (wall-clock measured threads).
    Host,
}

/// One machine a kernel can run on. Object-safe: the harness moves
/// `&dyn Platform` around; mappings downcast via the `*_params`
/// accessors for the family they support.
pub trait Platform {
    /// Which machine family this is.
    fn kind(&self) -> PlatformKind;
    /// Identity stamped into [`desim::RunRecord::platform`].
    fn label(&self) -> &'static str;
    /// Datasheet power attributed to the configuration, watts (the
    /// energy fallback when no activity model exists; 0 when unknown).
    fn datasheet_power_w(&self) -> f64;
    /// Chip parameters, when this is an Epiphany platform.
    fn epiphany_params(&self) -> Option<EpiphanyParams> {
        None
    }
    /// CPU parameters, when this is a reference-CPU platform.
    fn refcpu_params(&self) -> Option<RefCpuParams> {
        None
    }
    /// Worker threads, when this is a host platform.
    fn host_threads(&self) -> Option<usize> {
        None
    }
}

/// The Epiphany chip model. The default is the paper's 16-core E16G3;
/// [`EpiphanyPlatform::e64`] is the 64-core family member on an 8x8
/// mesh with the same per-core constants.
#[derive(Debug, Clone, Copy)]
pub struct EpiphanyPlatform {
    /// Microarchitecture constants for the run (including the mesh
    /// geometry — see `EpiphanyParams::mesh_cols`/`mesh_rows`).
    pub params: EpiphanyParams,
    /// Registry label ("epiphany" for the default E16G3, "e64" for
    /// the 64-core chip).
    label: &'static str,
}

impl Default for EpiphanyPlatform {
    fn default() -> EpiphanyPlatform {
        EpiphanyPlatform {
            params: EpiphanyParams::default(),
            label: "epiphany",
        }
    }
}

impl EpiphanyPlatform {
    /// The 64-core chip: 8x8 mesh, chip-level static power scaled with
    /// die area, identical per-core constants.
    pub fn e64() -> EpiphanyPlatform {
        EpiphanyPlatform {
            params: EpiphanyParams::e64(),
            label: "e64",
        }
    }

    /// The default platform with substituted parameters, keeping the
    /// label consistent with the declared mesh (4x4 meshes stay
    /// "epiphany", 8x8 becomes "e64", anything else is "epiphany"
    /// with the custom geometry carried in the params).
    pub fn with_params(params: EpiphanyParams) -> EpiphanyPlatform {
        let label = if (params.mesh_cols, params.mesh_rows) == (8, 8) {
            "e64"
        } else {
            "epiphany"
        };
        EpiphanyPlatform { params, label }
    }
}

impl Platform for EpiphanyPlatform {
    fn kind(&self) -> PlatformKind {
        PlatformKind::Epiphany
    }

    fn label(&self) -> &'static str {
        self.label
    }

    fn datasheet_power_w(&self) -> f64 {
        // The 2 W datasheet figure is for the 16-core chip; larger
        // family members scale with core count (the E64's 65 nm
        // datasheet point is ~4x the E16G3's).
        EPIPHANY_POWER_W * self.params.cores() as f64 / EpiphanyParams::REFERENCE_CORES as f64
    }

    fn epiphany_params(&self) -> Option<EpiphanyParams> {
        Some(self.params)
    }
}

/// The reference-CPU model (one i7 core).
#[derive(Debug, Clone, Copy, Default)]
pub struct RefCpuPlatform {
    /// Pipeline and memory-hierarchy constants for the run.
    pub params: RefCpuParams,
}

impl Platform for RefCpuPlatform {
    fn kind(&self) -> PlatformKind {
        PlatformKind::RefCpu
    }

    fn label(&self) -> &'static str {
        "refcpu"
    }

    fn datasheet_power_w(&self) -> f64 {
        self.params.power_w
    }

    fn refcpu_params(&self) -> Option<RefCpuParams> {
        Some(self.params)
    }
}

/// The host machine: kernels run natively on `threads` std threads and
/// are wall-clock timed. No power model — records fall back to 0 J.
#[derive(Debug, Clone, Copy)]
pub struct HostPlatform {
    /// Worker threads to use.
    pub threads: usize,
}

impl Default for HostPlatform {
    fn default() -> HostPlatform {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        HostPlatform { threads }
    }
}

impl Platform for HostPlatform {
    fn kind(&self) -> PlatformKind {
        PlatformKind::Host
    }

    fn label(&self) -> &'static str {
        "host"
    }

    fn datasheet_power_w(&self) -> f64 {
        0.0
    }

    fn host_threads(&self) -> Option<usize> {
        Some(self.threads)
    }
}

/// Look a platform up by its record label (the `--platform` flag of the
/// unified runner).
pub fn platform_named(name: &str) -> Option<Box<dyn Platform>> {
    match name {
        // "e16" is an alias for the default 16-core chip; the record
        // label stays "epiphany" for continuity with existing results.
        "epiphany" | "e16" => Some(Box::new(EpiphanyPlatform::default())),
        "e64" => Some(Box::new(EpiphanyPlatform::e64())),
        "refcpu" => Some(Box::new(RefCpuPlatform::default())),
        "host" => Some(Box::new(HostPlatform::default())),
        _ => None,
    }
}

/// Every platform, for exhaustive cross-machine sweeps.
pub fn all_platforms() -> Vec<Box<dyn Platform>> {
    vec![
        Box::new(EpiphanyPlatform::default()),
        Box::new(EpiphanyPlatform::e64()),
        Box::new(RefCpuPlatform::default()),
        Box::new(HostPlatform::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_the_registry() {
        for p in all_platforms() {
            let named = platform_named(p.label()).expect("label must resolve");
            assert_eq!(named.kind(), p.kind());
        }
        assert!(platform_named("vax").is_none());
    }

    #[test]
    fn param_accessors_match_kinds() {
        assert!(EpiphanyPlatform::default().epiphany_params().is_some());
        assert!(EpiphanyPlatform::default().refcpu_params().is_none());
        assert!(RefCpuPlatform::default().refcpu_params().is_some());
        assert!(HostPlatform::default().host_threads().unwrap_or(0) >= 1);
    }

    #[test]
    fn datasheet_power_follows_the_paper() {
        assert_eq!(
            EpiphanyPlatform::default().datasheet_power_w(),
            EPIPHANY_POWER_W
        );
        assert_eq!(RefCpuPlatform::default().datasheet_power_w(), INTEL_POWER_W);
    }

    #[test]
    fn e64_registers_with_scaled_geometry_and_power() {
        let p = platform_named("e64").expect("e64 must resolve");
        assert_eq!(p.kind(), PlatformKind::Epiphany);
        assert_eq!(p.label(), "e64");
        let params = p.epiphany_params().expect("epiphany family");
        assert_eq!((params.mesh_cols, params.mesh_rows), (8, 8));
        assert_eq!(p.datasheet_power_w(), 4.0 * EPIPHANY_POWER_W);
        // "e16" aliases the default chip without forking the label.
        let e16 = platform_named("e16").expect("e16 alias");
        assert_eq!(e16.label(), "epiphany");
        assert_eq!(e16.epiphany_params().map(|p| p.cores()), Some(16));
        // with_params keeps labels in sync with geometry.
        assert_eq!(
            EpiphanyPlatform::with_params(epiphany::EpiphanyParams::e64()).label(),
            "e64"
        );
        assert_eq!(
            EpiphanyPlatform::with_params(epiphany::EpiphanyParams::default()).label(),
            "epiphany"
        );
    }
}
