//! Run the SPMD FFBP mapping on the simulated 16-core Epiphany and
//! print the machine report: simulated time, energy breakdown, eLink
//! pressure, and the prefetch hit rate that drives the paper's story.
//!
//! Run with: `cargo run --example epiphany_ffbp --release`

use sar_repro::epiphany::EpiphanyParams;
use sar_repro::sar_epiphany::ffbp_spmd::{self, SpmdOptions};
use sar_repro::sar_epiphany::{ffbp_seq, workloads::FfbpWorkload};

fn main() {
    // A reduced workload keeps the example quick; the full Table I run
    // lives in `cargo run -p bench --bin table1 --release`.
    let geom = sar_repro::sar_core::geometry::SarGeometry {
        num_pulses: 256,
        ..sar_repro::sar_core::geometry::SarGeometry::paper_size()
    };
    let scene = sar_repro::sar_core::scene::Scene::six_targets(geom);
    let w = FfbpWorkload {
        geom,
        data: sar_repro::sar_core::scene::simulate_compressed_data(&scene, 0.0, 7),
        config: Default::default(),
    };

    let seq = ffbp_seq::run(&w, EpiphanyParams::default());
    let par = ffbp_spmd::run(&w, EpiphanyParams::default(), SpmdOptions::default());

    println!("{}", seq.record);
    println!();
    println!("{}", par.record);
    println!();
    println!(
        "prefetch coverage: {} local / {} external ({:.1}% hit rate)",
        par.local_hits,
        par.external_misses,
        100.0 * par.local_hits as f64 / (par.local_hits + par.external_misses) as f64
    );
    println!(
        "16-core speedup over one Epiphany core: {:.2}x (paper, full size: 11.7x)",
        seq.record.elapsed.seconds() / par.record.elapsed.seconds()
    );
    assert_eq!(
        seq.image.as_slice(),
        par.image.as_slice(),
        "both mappings must form the same image"
    );
}
