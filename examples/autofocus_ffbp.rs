//! The full Figure-4 pipeline: a non-linear flight track defocuses the
//! plain FFBP image; running the autofocus criterion before each
//! subaperture merge recovers it.
//!
//! Run with: `cargo run --example autofocus_ffbp --release`

use sar_repro::sar_core::autofocus::integrated::{ffbp_with_autofocus, IntegratedConfig};
use sar_repro::sar_core::ffbp::{ffbp, FfbpConfig};
use sar_repro::sar_core::geometry::SarGeometry;
use sar_repro::sar_core::scene::{simulate_compressed_data, simulate_with_track, Scene};
use sar_repro::sar_core::track::FlightTrack;

fn main() {
    let geom = SarGeometry::test_size();
    let scene = Scene::single_target(geom);

    // The aircraft weaves +/- 1 m around the nominal line.
    let track = FlightTrack::step(geom.num_pulses, 1.5);
    let perturbed = simulate_with_track(&scene, &track, 0.0, 0);
    let clean = simulate_compressed_data(&scene, 0.0, 0);

    let ideal = ffbp(&clean, &geom, &FfbpConfig::default());
    let plain = ffbp(&perturbed, &geom, &FfbpConfig::default());
    let auto_run = ffbp_with_autofocus(&perturbed, &geom, &IntegratedConfig::default());

    let (p_ideal, _, _) = ideal.image.peak();
    let (p_plain, _, _) = plain.image.peak();
    let (p_auto, _, _) = auto_run.image.peak();

    println!("flight-path error: {:.1} m step mid-aperture", 1.5);
    println!("focus peak, straight track      : {p_ideal:.1} (reference)");
    println!(
        "focus peak, perturbed, plain    : {p_plain:.1} ({:.0}% of reference)",
        100.0 * p_plain / p_ideal
    );
    println!(
        "focus peak, perturbed, autofocus: {p_auto:.1} ({:.0}% of reference)",
        100.0 * p_auto / p_ideal
    );
    println!("\ncorrections applied:");
    for c in &auto_run.corrections {
        println!(
            "  merge iteration {} / pair {}: {:+.2} m",
            c.iteration, c.pair, c.dx_meters
        );
    }
    assert!(p_auto > p_plain, "autofocus must help");
    println!("\nautofocus recovered the defocused image — example OK");
}
