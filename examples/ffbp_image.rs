//! Form images of the paper's six-point-target scene with both GBP and
//! FFBP and write them as PGM files (a reduced-size Figure 7).
//!
//! Run with: `cargo run --example ffbp_image --release`

use std::path::Path;

use sar_repro::sar_core::ffbp::{ffbp, FfbpConfig, InterpKind};
use sar_repro::sar_core::gbp::gbp;
use sar_repro::sar_core::geometry::SarGeometry;
use sar_repro::sar_core::quality::{image_entropy, normalized_rmse};
use sar_repro::sar_core::scene::{simulate_compressed_data, Scene};

fn main() {
    let geometry = SarGeometry {
        num_pulses: 256,
        num_bins: 257,
        ..SarGeometry::paper_size()
    };
    let scene = Scene::six_targets(geometry);
    let data = simulate_compressed_data(&scene, 0.0, 7);
    let out = Path::new("example_images");
    std::fs::create_dir_all(out).expect("create output dir");

    data.write_pgm(&out.join("raw_data.pgm"), -50.0).unwrap();
    println!("raw pulse-compressed data -> example_images/raw_data.pgm");

    let reference = gbp(&data, &geometry, geometry.num_pulses);
    reference
        .image
        .write_pgm(&out.join("gbp.pgm"), -50.0)
        .unwrap();
    println!("GBP reference             -> example_images/gbp.pgm");

    for (name, interp) in [
        ("nearest", InterpKind::Nearest),
        ("cubic", InterpKind::Cubic),
    ] {
        let cfg = FfbpConfig {
            interp,
            ..FfbpConfig::default()
        };
        let run = ffbp(&data, &geometry, &cfg);
        let file = format!("ffbp_{name}.pgm");
        run.image.write_pgm(&out.join(&file), -50.0).unwrap();
        println!(
            "FFBP ({name:>7})          -> example_images/{file}  (RMSE vs GBP {:.4}, entropy {:.2})",
            normalized_rmse(&run.image, &reference.image),
            image_entropy(&run.image)
        );
    }
    println!("\nCompare the PGMs: six focused points in all formed images; the");
    println!("nearest-neighbour FFBP panel is visibly noisier than GBP, the cubic");
    println!("one close to it — Figure 7's story.");
}
