//! Autofocus demonstration: inject a known flight-path error into a
//! pair of subimages, sweep candidate compensations, and recover the
//! error by maximising the focus criterion (eq. 6 of the paper).
//!
//! Run with: `cargo run --example autofocus_search --release`

use sar_repro::desim::OpCounts;
use sar_repro::sar_core::autofocus::{best_shift, sweep_criterion, AutofocusConfig, Block6};

fn main() {
    let true_error = 0.35f32; // pixels of linear shift between the halves
    println!("injected path error: {true_error:+.2} px\n");

    // The two contributing subimages observe the same scene displaced
    // by the path error.
    let f_minus = Block6::gaussian_blob(0.0, true_error / 2.0);
    let f_plus = Block6::gaussian_blob(0.0, -true_error / 2.0);

    let cfg = AutofocusConfig::default();
    let mut counts = OpCounts::default();
    let sweep = sweep_criterion(&f_minus, &f_plus, 1.0, 21, &cfg, &mut counts);

    println!("{:>9} {:>14}", "shift", "criterion");
    let peak = best_shift(&sweep);
    for (shift, value) in &sweep {
        let marker = if (*shift, *value) == peak {
            "  <-- best"
        } else {
            ""
        };
        println!("{shift:>+9.2} {value:>14.4}{marker}");
    }

    println!(
        "\nrecovered compensation: {:+.2} px (true {true_error:+.2})",
        peak.0
    );
    println!(
        "criterion arithmetic: {} flops across {} hypotheses",
        counts.flop_work(),
        sweep.len()
    );
    assert!(
        (peak.0 - true_error).abs() <= 0.15,
        "autofocus failed to recover the injected error"
    );
    println!("autofocus recovered the path error — example OK");
}
