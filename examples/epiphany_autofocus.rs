//! Run the autofocus criterion as the paper's 13-core MPMD streaming
//! pipeline on the simulated Epiphany and compare against the
//! single-core version.
//!
//! Run with: `cargo run --example epiphany_autofocus --release`

use sar_repro::sar_epiphany::autofocus_mpmd::{self, Placement};
use sar_repro::sar_epiphany::autofocus_seq;
use sar_repro::sar_epiphany::workloads::AutofocusWorkload;

fn main() {
    let w = AutofocusWorkload::paper();

    let seq = autofocus_seq::run(&w, autofocus_seq::params());
    let mpmd = autofocus_mpmd::run(&w, autofocus_mpmd::params(), Placement::neighbor());

    println!("{}", seq.record);
    println!();
    println!("{}", mpmd.record);
    println!();

    let px = w.pixels() as f64;
    println!(
        "throughput: sequential {:>10.0} px/s | pipeline {:>10.0} px/s | {:.2}x",
        px / seq.record.elapsed.seconds(),
        px / mpmd.record.elapsed.seconds(),
        seq.record.elapsed.seconds() / mpmd.record.elapsed.seconds()
    );
    println!(
        "recovered path compensation: {:+.2} px (injected {:+.2})",
        mpmd.best.0, w.true_shift
    );
    assert_eq!(seq.sweep.len(), mpmd.sweep.len());
    println!("pipeline and sequential criteria agree — example OK");
}
