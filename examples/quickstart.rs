//! Quickstart: simulate a small radar scene, form the image with fast
//! factorized back-projection, and check the target focused.
//!
//! Run with: `cargo run --example quickstart --release`

use sar_repro::sar_core::ffbp::{ffbp, FfbpConfig};
use sar_repro::sar_core::geometry::SarGeometry;
use sar_repro::sar_core::scene::{simulate_compressed_data, Scene};

fn main() {
    // 64 pulses x 129 range bins, one point target at mid swath.
    let geometry = SarGeometry::test_size();
    let scene = Scene::single_target(geometry);
    let data = simulate_compressed_data(&scene, 0.0, 1);

    // Form the image: merge base 2, nearest-neighbour interpolation
    // (the paper's configuration).
    let run = ffbp(&data, &geometry, &FfbpConfig::default());

    let (peak, beam, bin) = run.image.peak();
    println!("FFBP finished after {} merge iterations", run.iterations);
    println!(
        "image: {} beams x {} range bins",
        run.image.rows(),
        run.image.cols()
    );
    println!("peak magnitude {peak:.1} at beam {beam}, range bin {bin}");
    println!(
        "arithmetic: {} flops ({} fused multiply-adds), {} sqrt, {} trig",
        run.counts.flop_work(),
        run.counts.fmas,
        run.counts.sqrts,
        run.counts.trigs
    );

    // The target sits at broadside, mid swath: the peak must land there.
    assert!((beam as i64 - 32).abs() <= 2, "azimuth focus off");
    assert!((bin as i64 - 64).abs() <= 2, "range focus off");
    println!("target focused where expected — quickstart OK");
}
